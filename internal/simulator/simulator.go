// Package simulator is the reproduction's SimGrid+StarPU substitute: a
// deterministic discrete-event simulator executing a task DAG on a modelled
// heterogeneous platform under a pluggable dynamic scheduling policy.
//
// The modelling level matches the paper's simulation setup:
//
//   - per-(kernel, resource-class) execution times from the platform model;
//   - push-time scheduling: when a task's dependencies complete, the
//     scheduler assigns it to a worker queue (FIFO for dmda, priority-
//     sorted for dmdas), exactly StarPU's dm* behaviour;
//   - data transfers over per-accelerator PCI links with prefetch at
//     assignment time, MSI-style tile replication and invalidation on
//     write, and serialization on each link (the fluid contention model);
//   - an optional runtime-overhead + deterministic-jitter model standing in
//     for "actual execution" runs (see DESIGN.md: heterogeneous actual
//     executions cannot be performed without real GPUs).
//
// Simulations are fully deterministic for a given (DAG, platform, scheduler,
// seed) tuple.
package simulator

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Options tunes a simulation run.
type Options struct {
	// Seed feeds the scheduler (random policy) and the jitter model.
	Seed int64
	// Overhead applies the platform's per-task runtime overhead and
	// multiplicative jitter, emulating an actual (non-simulated) run.
	Overhead bool
	// WorkStealing lets an idle worker with an empty queue migrate the
	// lowest-priority queued task from the most-loaded other worker
	// (StarPU's `ws` family layered on any push policy). Hint restrictions
	// are honoured via sched.ClassRestricter; static injections
	// (sched.Gater implementations) are never stolen from.
	WorkStealing bool
}

// Result is the outcome of one simulated execution.
type Result struct {
	MakespanSec   float64
	Start, End    []float64 // per task ID
	Worker        []int     // per task ID
	TransferSec   float64   // cumulative time of all PCI hops
	TransferCount int       // number of tile hops
	BusySec       []float64 // per worker: total execution time
	IdleSec       []float64 // per worker: makespan − busy
	Evictions     int       // tiles dropped from device memory (LRU)
	Writebacks    int       // evictions that required a device→host copy
	StallSec      float64   // worker time spent waiting for data (start − max(free, now))
}

// GFlops returns the achieved performance for an algorithm of the given
// total flop count.
func (r *Result) GFlops(flops float64) float64 {
	return platform.GFlops(flops, r.MakespanSec)
}

type queueEntry struct {
	task *graph.Task
	prio float64
	seq  int
}

type event struct {
	time   float64
	seq    int
	worker int
	task   *graph.Task
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type state struct {
	d   *graph.DAG
	p   *platform.Platform
	s   sched.Scheduler
	opt Options

	now        float64
	queues     [][]queueEntry
	executing  []bool
	workerFree []float64
	estFree    []float64
	dataReady  []float64
	doneTask   []bool
	locations  map[[2]int]map[int]bool // tile → memory nodes with a valid copy
	linkFree   []float64               // per memory node (index ≥ 1 used)
	seq        int

	// Device memory manager (StarPU-style LRU with write-back): per node,
	// the resident tiles with last-use stamps and pin counts (tiles needed
	// by tasks assigned-but-not-finished on that node cannot be evicted).
	capacity []int // per node, in tiles; 0 = unlimited
	lastUse  []map[[2]int]int
	pins     []map[[2]int]int

	res *Result
}

// View interface for schedulers ------------------------------------------------

func (st *state) Now() float64          { return st.now }
func (st *state) Workers() int          { return st.p.Workers() }
func (st *state) WorkerClass(w int) int { return st.p.WorkerClass(w) }
func (st *state) QueueEnd(w int) float64 {
	return st.estFree[w]
}
func (st *state) ExecTime(w int, t *graph.Task) float64 {
	return st.p.Time(st.p.WorkerClass(w), t.Kind)
}

// TransferEstimate sums one PCI hop per missing tile (two for GPU↔GPU),
// ignoring link contention — the same estimation level StarPU's dmda uses.
func (st *state) TransferEstimate(w int, t *graph.Task) float64 {
	if !st.p.Bus.Enabled {
		return 0
	}
	node := st.p.MemoryNode(w)
	hop := st.p.Bus.TransferTime(st.p.TileBytes)
	total := 0.0
	for _, ref := range t.Footprint {
		locs := st.locations[[2]int{ref.I, ref.J}]
		if locs[node] {
			continue
		}
		if node == 0 || locs[0] {
			total += hop
		} else {
			total += 2 * hop
		}
	}
	return total
}

// ---------------------------------------------------------------------------

// Run simulates the DAG on the platform under the given scheduler.
func Run(d *graph.DAG, p *platform.Platform, s sched.Scheduler, opt Options) (*Result, error) {
	return RunContext(context.Background(), d, p, s, opt)
}

// cancelCheckStride is how many completion events the event loop processes
// between context checks: frequent enough that cancellation lands within
// microseconds of simulated work, rare enough to keep ctx.Err off the hot
// path.
const cancelCheckStride = 32

// RunContext is Run with cancellation: the event loop polls ctx every few
// events and abandons the simulation with ctx's error once it is done.
func RunContext(ctx context.Context, d *graph.DAG, p *platform.Platform, s sched.Scheduler, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simulator: run cancelled: %w", err)
	}
	if err := p.Validate(d.Kinds()); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Tasks)
	nW := p.Workers()
	st := &state{
		d: d, p: p, s: s, opt: opt,
		queues:     make([][]queueEntry, nW),
		executing:  make([]bool, nW),
		workerFree: make([]float64, nW),
		estFree:    make([]float64, nW),
		dataReady:  make([]float64, n),
		doneTask:   make([]bool, n),
		locations:  map[[2]int]map[int]bool{},
		linkFree:   make([]float64, p.MemoryNodes()),
		res: &Result{
			Start:   make([]float64, n),
			End:     make([]float64, n),
			Worker:  make([]int, n),
			BusySec: make([]float64, nW),
			IdleSec: make([]float64, nW),
		},
	}
	for i := range st.res.Worker {
		st.res.Worker[i] = -1
	}
	// All tiles start valid on the host node.
	for _, t := range d.Tasks {
		for _, ref := range t.Footprint {
			key := [2]int{ref.I, ref.J}
			if st.locations[key] == nil {
				st.locations[key] = map[int]bool{0: true}
			}
		}
	}
	// Device memory manager state.
	st.capacity = make([]int, p.MemoryNodes())
	st.lastUse = make([]map[[2]int]int, p.MemoryNodes())
	st.pins = make([]map[[2]int]int, p.MemoryNodes())
	for node := 0; node < p.MemoryNodes(); node++ {
		st.capacity[node] = p.NodeCapacityTiles(node)
		st.lastUse[node] = map[[2]int]int{}
		st.pins[node] = map[[2]int]int{}
	}

	s.Init(d, p, opt.Seed)

	indeg := make([]int, n)
	for _, t := range d.Tasks {
		indeg[t.ID] = len(t.Pred)
	}

	var events eventHeap
	heap.Init(&events)

	done := 0
	for _, t := range d.Tasks {
		if indeg[t.ID] == 0 {
			st.assign(t)
		}
	}
	st.tryStartAll(&events)

	for events.Len() > 0 {
		if done%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("simulator: run cancelled after %d of %d tasks: %w", done, n, err)
			}
		}
		ev := heap.Pop(&events).(event)
		st.now = ev.time
		w := ev.worker
		st.executing[w] = false
		st.workerFree[w] = st.now
		st.doneTask[ev.task.ID] = true
		done++
		// Invalidate: the written tile's only valid copy is on this node.
		node := p.MemoryNode(w)
		for _, ref := range ev.task.Footprint {
			if ref.Mode == graph.ReadWrite {
				key := [2]int{ref.I, ref.J}
				for other := range st.locations[key] {
					if other != node && other != 0 {
						delete(st.lastUse[other], key)
					}
				}
				st.locations[key] = map[int]bool{node: true}
				if node != 0 {
					if _, ok := st.lastUse[node][key]; !ok {
						st.lastUse[node][key] = st.seq
						st.seq++
					}
				}
			}
		}
		st.pinFootprint(ev.task, node, -1)
		for _, sid := range ev.task.Succ {
			indeg[sid]--
			if indeg[sid] == 0 {
				st.assign(d.Tasks[sid])
			}
		}
		st.tryStartAll(&events)
	}

	if done != n {
		return nil, fmt.Errorf("simulator: deadlock — %d of %d tasks completed", done, n)
	}
	mk := 0.0
	for _, e := range st.res.End {
		if e > mk {
			mk = e
		}
	}
	st.res.MakespanSec = mk
	for w := 0; w < nW; w++ {
		st.res.IdleSec[w] = mk - st.res.BusySec[w]
	}
	return st.res, nil
}

// pinFootprint pins (or unpins, delta −1) a task's tiles on a memory node so
// the LRU eviction cannot drop data a queued task depends on.
func (st *state) pinFootprint(t *graph.Task, node, delta int) {
	if node == 0 {
		return
	}
	for _, ref := range t.Footprint {
		key := [2]int{ref.I, ref.J}
		st.pins[node][key] += delta
		if st.pins[node][key] <= 0 {
			delete(st.pins[node], key)
		}
	}
}

// addCopy records a resident tile on an accelerator node and evicts LRU
// tiles if the node is over capacity.
func (st *state) addCopy(node int, key [2]int) {
	if node == 0 {
		return
	}
	st.lastUse[node][key] = st.seq
	st.seq++
	st.evictIfNeeded(node)
}

// evictIfNeeded drops least-recently-used unpinned tiles from a full node,
// writing back dirty copies (sole valid copy on this node) to the host over
// the node's PCI link. If everything resident is pinned, the node
// over-subscribes silently (the workload genuinely needs more memory).
func (st *state) evictIfNeeded(node int) {
	capTiles := st.capacity[node]
	if capTiles == 0 {
		return
	}
	for len(st.lastUse[node]) > capTiles {
		victim, bestSeq, found := [2]int{}, int(^uint(0)>>1), false
		for key, seq := range st.lastUse[node] {
			if st.pins[node][key] > 0 {
				continue
			}
			if seq < bestSeq {
				bestSeq, victim, found = seq, key, true
			}
		}
		if !found {
			return
		}
		locs := st.locations[victim]
		if len(locs) == 1 && locs[node] && st.p.Bus.Enabled {
			// Sole copy: write back to the host before dropping.
			hop := st.p.Bus.TransferTime(st.p.TileBytes)
			start := math.Max(st.now, st.linkFree[node])
			st.linkFree[node] = start + hop
			st.res.TransferSec += hop
			st.res.TransferCount++
			st.res.Writebacks++
			locs[0] = true
		} else if len(locs) == 1 && locs[node] {
			locs[0] = true // free transfers: the host copy is immediate
		}
		delete(locs, node)
		delete(st.lastUse[node], victim)
		st.res.Evictions++
	}
}

// assign routes a freshly ready task through the scheduler to a worker queue
// and prefetches its missing tiles to that worker's memory node.
func (st *state) assign(t *graph.Task) {
	w := st.s.Assign(st, t)
	if w < 0 || w >= st.p.Workers() {
		panic(fmt.Sprintf("simulator: scheduler assigned task %s to invalid worker %d", t.Name(), w))
	}
	st.pinFootprint(t, st.p.MemoryNode(w), 1)
	ready := st.prefetch(t, w)
	st.dataReady[t.ID] = ready
	exec := st.ExecTime(w, t)
	st.estFree[w] = math.Max(math.Max(st.estFree[w], st.now), ready) + exec

	e := queueEntry{task: t, prio: st.s.Priority(t), seq: st.seq}
	st.seq++
	q := st.queues[w]
	if st.s.Ordered() {
		// Insert keeping descending priority, stable on seq.
		pos := sort.Search(len(q), func(i int) bool { return q[i].prio < e.prio })
		q = append(q, queueEntry{})
		copy(q[pos+1:], q[pos:])
		q[pos] = e
	} else {
		q = append(q, e)
	}
	st.queues[w] = q
}

// prefetch schedules the PCI hops bringing t's tiles to worker w's node and
// returns the time at which all data is available there.
func (st *state) prefetch(t *graph.Task, w int) float64 {
	node := st.p.MemoryNode(w)
	ready := st.now
	for _, ref := range t.Footprint {
		key := [2]int{ref.I, ref.J}
		locs := st.locations[key]
		if locs[node] {
			if node != 0 { // refresh LRU position
				st.lastUse[node][key] = st.seq
				st.seq++
			}
			continue
		}
		if !st.p.Bus.Enabled {
			locs[node] = true
			st.addCopy(node, key)
			continue
		}
		hop := st.p.Bus.TransferTime(st.p.TileBytes)
		var avail float64
		if node == 0 {
			// Device → host over the source device's link.
			src := st.sourceNode(locs)
			start := math.Max(st.now, st.linkFree[src])
			avail = start + hop
			st.linkFree[src] = avail
			st.res.TransferSec += hop
			st.res.TransferCount++
		} else if locs[0] {
			// Host → device over the target device's link.
			start := math.Max(st.now, st.linkFree[node])
			avail = start + hop
			st.linkFree[node] = avail
			st.res.TransferSec += hop
			st.res.TransferCount++
		} else {
			// Device → host → device: two hops on two links.
			src := st.sourceNode(locs)
			s1 := math.Max(st.now, st.linkFree[src])
			e1 := s1 + hop
			st.linkFree[src] = e1
			s2 := math.Max(e1, st.linkFree[node])
			avail = s2 + hop
			st.linkFree[node] = avail
			st.res.TransferSec += 2 * hop
			st.res.TransferCount += 2
			locs[0] = true // the host keeps the staged copy
		}
		locs[node] = true
		st.addCopy(node, key)
		if avail > ready {
			ready = avail
		}
	}
	return ready
}

// completed is the completion oracle handed to sched.Gater implementations.
func (st *state) completed(id int) bool { return st.doneTask[id] }

// sourceNode picks the transfer source deterministically: the host if it has
// a valid copy, else the lowest-numbered holding node.
func (st *state) sourceNode(locs map[int]bool) int {
	if locs[0] {
		return 0
	}
	best := math.MaxInt32
	for n, ok := range locs {
		if ok && n < best {
			best = n
		}
	}
	return best
}

// trySteal moves a queued task from the most-loaded victim to idle worker w.
// Returns true if a task was migrated (and its data re-prefetched).
func (st *state) trySteal(w int) bool {
	restr, _ := st.s.(sched.ClassRestricter)
	class := st.p.WorkerClass(w)
	// Victim: the worker with the longest queue holding a stealable task.
	bestV, bestIdx, bestLen := -1, -1, 0
	for v := range st.queues {
		if v == w || len(st.queues[v]) <= bestLen {
			continue
		}
		// Steal from the back: the entry the victim would run last.
		for idx := len(st.queues[v]) - 1; idx >= 0; idx-- {
			t := st.queues[v][idx].task
			if math.IsInf(st.ExecTime(w, t), 1) {
				continue
			}
			if restr != nil {
				if cls := restr.AllowedClasses(t); cls != nil && !containsInt(cls, class) {
					continue
				}
			}
			bestV, bestIdx, bestLen = v, idx, len(st.queues[v])
			break
		}
	}
	if bestV == -1 {
		return false
	}
	e := st.queues[bestV][bestIdx]
	st.queues[bestV] = append(st.queues[bestV][:bestIdx], st.queues[bestV][bestIdx+1:]...)
	// Move pins and re-prefetch for the thief's memory node.
	st.pinFootprint(e.task, st.p.MemoryNode(bestV), -1)
	st.pinFootprint(e.task, st.p.MemoryNode(w), 1)
	st.dataReady[e.task.ID] = st.prefetch(e.task, w)
	exec := st.ExecTime(w, e.task)
	st.estFree[w] = math.Max(math.Max(st.estFree[w], st.now), st.dataReady[e.task.ID]) + exec
	st.queues[w] = append(st.queues[w], e)
	return true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// tryStartAll starts the head-of-queue task on every idle worker.
func (st *state) tryStartAll(events *eventHeap) {
	gater, _ := st.s.(sched.Gater)
	if st.opt.WorkStealing && gater == nil {
		for w := range st.queues {
			if !st.executing[w] && len(st.queues[w]) == 0 {
				st.trySteal(w)
			}
		}
	}
	for w := range st.queues {
		for !st.executing[w] && len(st.queues[w]) > 0 {
			e := st.queues[w][0]
			if gater != nil && !gater.MayStart(e.task, st.completed) {
				break // hold the worker for the planned-order predecessor
			}
			st.queues[w] = st.queues[w][1:]
			t := e.task
			avail := math.Max(st.now, st.workerFree[w])
			start := math.Max(avail, st.dataReady[t.ID])
			st.res.StallSec += start - avail
			exec := st.ExecTime(w, t)
			if st.opt.Overhead {
				exec = st.jittered(exec, t.ID) + st.p.Overhead.PerTaskSec
			}
			end := start + exec
			st.res.Start[t.ID] = start
			st.res.End[t.ID] = end
			st.res.Worker[t.ID] = w
			st.res.BusySec[w] += end - start
			st.executing[w] = true
			st.workerFree[w] = end
			if st.estFree[w] < end {
				st.estFree[w] = end
			}
			heap.Push(events, event{time: end, seq: st.seq, worker: w, task: t})
			st.seq++
			break // worker now busy; inner loop exits via executing[w]
		}
	}
}

// jittered perturbs an execution time deterministically per (seed, task).
func (st *state) jittered(exec float64, taskID int) float64 {
	f := st.p.Overhead.JitterFrac
	if f == 0 {
		return exec
	}
	rng := rand.New(rand.NewSource(st.opt.Seed*1000003 + int64(taskID)))
	u := 2*rng.Float64() - 1
	return exec * (1 + f*u)
}

// Validate checks that a result is a legal schedule for the DAG: every task
// ran exactly once on a worker able to execute it, per-worker intervals do
// not overlap, and no task started before all its predecessors finished.
// (Data-transfer delays only push starts later, so the dependency check is
// a necessary condition regardless of the bus model.)
func Validate(d *graph.DAG, p *platform.Platform, r *Result) error {
	n := len(d.Tasks)
	if len(r.Start) != n || len(r.End) != n || len(r.Worker) != n {
		return fmt.Errorf("simulator: result arrays have wrong length")
	}
	perWorker := map[int][][2]float64{}
	for _, t := range d.Tasks {
		id := t.ID
		w := r.Worker[id]
		if w < 0 || w >= p.Workers() {
			return fmt.Errorf("simulator: task %s on invalid worker %d", t.Name(), w)
		}
		if math.IsInf(p.Time(p.WorkerClass(w), t.Kind), 1) {
			return fmt.Errorf("simulator: task %s ran on incapable worker %d", t.Name(), w)
		}
		if r.End[id] < r.Start[id] {
			return fmt.Errorf("simulator: task %s ends before it starts", t.Name())
		}
		for _, pr := range t.Pred {
			if r.Start[id] < r.End[pr]-1e-9 {
				return fmt.Errorf("simulator: task %s started %.9f before predecessor %s finished %.9f",
					t.Name(), r.Start[id], d.Tasks[pr].Name(), r.End[pr])
			}
		}
		perWorker[w] = append(perWorker[w], [2]float64{r.Start[id], r.End[id]})
	}
	for w, ivs := range perWorker {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		for i := 1; i < len(ivs); i++ {
			if ivs[i][0] < ivs[i-1][1]-1e-9 {
				return fmt.Errorf("simulator: overlapping intervals on worker %d", w)
			}
		}
	}
	return nil
}
