// Package hot exercises hotpathalloc: per-call allocation inside
// //chol:hotpath-annotated functions, and the directive parsing itself.
package hot

import (
	"fmt"
	"sort"
)

type stats struct {
	marks []float64
	buf   []int
}

func sink(v any)         { _ = v }
func sinkV(vs ...any)    { _ = vs }
func sinkPtr(p *stats)   { _ = p }
func sinkInts(xs []int)  { _ = xs }
func helper(n int) []int { return make([]int, n) } // unannotated: allowed to allocate

//chol:hotpath
func makeFlagged(n int) []int {
	return make([]int, n) // want `make in hot path makeFlagged allocates per call`
}

//chol:hotpath
func newFlagged() *stats {
	return new(stats) // want `new in hot path newFlagged allocates per call`
}

//chol:hotpath
func ptrLitFlagged() *stats {
	return &stats{} // want `in hot path ptrLitFlagged allocates per call`
}

//chol:hotpath
func sliceLitFlagged() []int {
	return []int{1, 2} // want `slice literal in hot path sliceLitFlagged allocates per call`
}

//chol:hotpath
func mapLitFlagged() map[int]bool {
	return map[int]bool{} // want `map literal in hot path mapLitFlagged allocates per call`
}

//chol:hotpath
func structValueFine() stats {
	return stats{} // a struct value is not a heap allocation
}

//chol:hotpath
func concatFlagged(a, b string) string {
	return a + b // want `string concatenation in hot path concatFlagged allocates per call`
}

//chol:hotpath
func fmtFlagged(n int) {
	fmt.Println(n) // want `fmt.Println in hot path fmtFlagged allocates`
}

//chol:hotpath
func closureFlagged(xs []int) int {
	f := func(i int) int { return xs[i] } // want `function literal in hot path closureFlagged`
	return f(0)
}

//chol:hotpath
func sortSearchClosureFine(xs []int, v int) int {
	// sort.Search's predicate provably does not escape: stack-allocated.
	return sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
}

//chol:hotpath
func appendBareLocalFlagged(n int) int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want `append to xs in hot path appendBareLocalFlagged may reallocate`
	}
	return len(xs)
}

//chol:hotpath
func appendToFieldFine(s *stats, t float64) {
	s.marks = append(s.marks, t) // field capacity amortizes across calls
}

//chol:hotpath
func appendPreallocatedFine(n int) int {
	xs := make([]int, 0, 64) // want `make in hot path appendPreallocatedFine`
	for i := 0; i < n; i++ {
		xs = append(xs, i) // destination has explicit capacity: exempt
	}
	return len(xs)
}

//chol:hotpath
func appendResliceFine(s *stats, n int) int {
	buf := s.buf[:0] // the reuse idiom
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	s.buf = buf
	return len(buf)
}

//chol:hotpath
func appendToParamFine(xs []int, v int) []int {
	return append(xs, v) // caller owns the capacity policy
}

//chol:hotpath
func boxingFlagged(n int) {
	sink(n) // want `argument n boxed into interface parameter in hot path boxingFlagged`
}

//chol:hotpath
func boxingPointerFine(p *stats) {
	sink(p) // pointer-shaped: stored directly in the interface word
}

//chol:hotpath
func variadicForwardFine(vs []any) {
	sinkV(vs...) // forwarding an existing slice: no boxing, no new backing array
}

//chol:hotpath
func plainCallsFine(p *stats, xs []int) {
	sinkPtr(p)    // concrete parameter types never box
	sinkInts(xs)  // slices pass by header
	_ = helper(1) // callee allocation is the callee's business (annotate it if hot)
}

//chol:hotpath
func stringConvFlagged(bs []byte) string {
	return string(bs) // want `string conversion in hot path stringConvFlagged copies and allocates`
}

//chol:hotpath
func ifaceConvFlagged(n int) any {
	return any(n) // want `conversion to interface`
}

//chol:hotpath with trailing prose after the directive still counts
func directiveWithProse(n int) []int {
	return make([]int, n) // want `make in hot path directiveWithProse`
}

// chol:hotpath — the space after // makes this prose, not a directive
func spacedNotADirective(n int) []int {
	return make([]int, n) // unannotated: no diagnostic
}

//chol:hotpathology is a different word entirely, not this directive
func suffixedNotADirective(n int) []int {
	return make([]int, n) // unannotated: no diagnostic
}

//chol:hotpath
func deliberateSlowPath(err error) {
	if err != nil {
		panic(fmt.Sprintf("hot: %v", err)) //chollint:alloc abort path
	}
}

// Lane-style structure-of-arrays state: one flat lane-major slab carved into
// per-lane windows with three-index slices, advanced in lockstep. The
// simulator's lane batch (simulator.LaneBatch) follows this shape; the hot
// advance must work entirely through the pre-carved windows.
type laneSoA struct {
	slab  []float64   // lane-major backing: lane i owns slab[i*w : (i+1)*w]
	lanes [][]float64 // carved windows aliasing slab
	heads []int       // per-lane queue head cursors
}

//chol:hotpath
func laneAdvanceFine(s *laneSoA, dt float64) int {
	// The lockstep sweep: every live lane steps once per call, reading and
	// writing only through the carved windows — no per-call allocation.
	live := 0
	for li, lane := range s.lanes {
		h := s.heads[li]
		if h >= len(lane) {
			continue
		}
		lane[h] += dt
		s.heads[li] = h + 1
		live++
	}
	return live
}

//chol:hotpath
func laneCarveFlagged(s *laneSoA, nLanes, w int) {
	s.lanes = s.lanes[:0]
	for i := 0; i < nLanes; i++ {
		s.lanes = append(s.lanes, s.slab[i*w:(i+1)*w:(i+1)*w]) // reslice append into retained field: amortized, exempt
	}
	s.heads = make([]int, nLanes) // want `make in hot path laneCarveFlagged allocates per call`
}
