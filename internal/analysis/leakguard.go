package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Leakguard flags goroutines whose exit is not tied to a cancellation or
// close path, in the packages where a leaked goroutine outlives a request
// or a batch: internal/service (one SSE subscriber per connection),
// internal/cpsolve (speculating worker pools) and internal/replay (batched
// lanes). A goroutine is reported when its body loops unconditionally
// (`for {}`) and nothing in the body forms an exit gate:
//
//   - a ctx.Done()/ctx.Err() check (context.Context methods, type-checked);
//   - ranging over a channel (exits when the producer closes it);
//   - a comma-ok channel receive (observes closure);
//   - receiving from a channel whose name declares its purpose
//     (done/quit/stop/close).
//
// Bounded loops and straight-line goroutines pass: the analyzer targets the
// spawn shapes that PR5/PR8 introduced — worker pools and stream pumps —
// where "runs forever by accident" is the actual failure mode. A goroutine
// that is joined externally (WaitGroup + closed queue, as in
// internal/runtime's executor, which is deliberately out of scope) is
// excused with //chollint:leakok on the go statement.
var Leakguard = &Analyzer{
	Name:     "leakguard",
	Doc:      "flags goroutines in service/cpsolve/replay whose exit is not tied to a ctx.Done/close path",
	Suppress: "leakok",
	Run:      runLeakguard,
}

// leakguardScope lists the package-path suffixes leakguard applies to.
var leakguardScope = []string{
	"internal/service",
	"internal/cpsolve",
	"internal/replay",
}

func inLeakguardScope(path string) bool {
	for _, s := range leakguardScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runLeakguard(pass *Pass) error {
	if !inLeakguardScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := pass.spawnedBody(g.Call)
			if body == nil {
				return true
			}
			if loop := unguardedLoop(pass.TypesInfo, body); loop != nil {
				pass.Reportf(g.Pos(),
					"goroutine may never exit: unconditional loop with no ctx.Done/ctx.Err check, close-gated range, or comma-ok receive on its exit path (annotate //chollint:leakok if joined externally)")
			}
			return true
		})
	}
	return nil
}

// spawnedBody resolves the body the go statement will run: a literal's own
// body, or the loaded declaration of a statically named function/method.
func (p *Pass) spawnedBody(call *ast.CallExpr) *ast.BlockStmt {
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return fl.Body
	}
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil || p.Prog == nil {
		return nil
	}
	if n := p.Prog.FuncNodeOf(fn); n != nil && n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// unguardedLoop returns an unconditional for loop in body when the body has
// no exit gate, else nil.
func unguardedLoop(info *types.Info, body *ast.BlockStmt) *ast.ForStmt {
	var loop *ast.ForStmt
	gated := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure runs on its own schedule
		case *ast.ForStmt:
			if x.Cond == nil && loop == nil {
				loop = x
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					gated = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
					if t := info.TypeOf(sel.X); t != nil && types.TypeString(t, nil) == "context.Context" {
						gated = true
					}
				}
			}
		case *ast.AssignStmt:
			// v, ok := <-ch observes channel closure.
			if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
				if u, ok := ast.Unparen(x.Rhs[0]).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					gated = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" && doneChanName(x.X) {
				gated = true
			}
		}
		return true
	})
	if gated {
		return nil
	}
	return loop
}

// doneChanName reports whether the received-from expression's terminal name
// announces a shutdown signal.
func doneChanName(e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, w := range []string{"done", "quit", "stop", "close"} {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}
