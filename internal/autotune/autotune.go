// Package autotune searches for the best tile size nb for a matrix of size
// N on a modelled platform — the knob the paper fixes to 960 because
// "previous work" (Agullo et al., GPU Computing Gems'10; IPDPS'11) found it
// optimal on Mirage. The trade-off it automates:
//
//   - large tiles: efficient kernels and little runtime overhead, but few
//     tasks, so the heterogeneous machine starves for parallelism;
//   - small tiles: abundant parallelism, but per-task runtime overhead and
//     lower kernel efficiency dominate.
//
// The model scales per-kernel times from a reference calibration at nb₀
// by the flop ratio, damped by an efficiency factor for small tiles
// (kernels below ≈256 run at reduced sustained throughput, as on real
// BLAS), and charges the platform's per-task overhead in simulation.
package autotune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// Efficiency models the sustained-throughput penalty of small tiles: full
// efficiency at and above refNB, dropping smoothly below (a tile of 1/4 the
// reference size runs at ≈70 % efficiency, matching typical BLAS curves).
func Efficiency(nb, refNB int) float64 {
	if nb >= refNB {
		return 1
	}
	r := float64(nb) / float64(refNB)
	return 0.55 + 0.45*math.Sqrt(r)
}

// ScalePlatform derives a platform model for tile size nb from a reference
// model calibrated at refNB: each kernel time is scaled by its flop ratio
// divided by the efficiency factor; tile bytes shrink quadratically.
func ScalePlatform(ref *platform.Platform, refNB, nb int) *platform.Platform {
	p := ref.Clone()
	p.Name = fmt.Sprintf("%s-nb%d", ref.Name, nb)
	eff := Efficiency(nb, refNB)
	ratio := map[graph.Kind]float64{
		graph.POTRF: kernels.PotrfFlops(nb) / kernels.PotrfFlops(refNB),
		graph.TRSM:  kernels.TrsmFlops(nb) / kernels.TrsmFlops(refNB),
		graph.SYRK:  kernels.SyrkFlops(nb) / kernels.SyrkFlops(refNB),
		graph.GEMM:  kernels.GemmFlops(nb) / kernels.GemmFlops(refNB),
	}
	for ci := range p.Classes {
		times := map[graph.Kind]float64{}
		for k, t := range p.Classes[ci].Times {
			r, ok := ratio[k]
			if !ok {
				continue // non-Cholesky kernels are not retuned
			}
			times[k] = t * r / eff
		}
		p.Classes[ci].Times = times
	}
	p.TileBytes = float64(nb) * float64(nb) * 8
	return p
}

// Point is one sweep sample.
type Point struct {
	NB       int
	Tiles    int // matrix partitioned into Tiles×Tiles
	GFlops   float64
	Makespan float64
}

// Sweep simulates the Cholesky factorization of an N×N matrix for each
// candidate tile size (N must be divisible by each) under dmdas with the
// runtime-overhead model on, and returns the samples sorted by nb.
func Sweep(n int, candidates []int, ref *platform.Platform, refNB int, seed int64) ([]Point, error) {
	var out []Point
	for _, nb := range candidates {
		if nb <= 0 || n%nb != 0 {
			continue
		}
		tiles := n / nb
		p := ScalePlatform(ref, refNB, nb)
		d := graph.Cholesky(tiles)
		r, err := simulator.Run(d, p, sched.NewDMDAS(),
			simulator.Options{Seed: seed, Overhead: true})
		if err != nil {
			return nil, fmt.Errorf("autotune nb=%d: %w", nb, err)
		}
		out = append(out, Point{
			NB:       nb,
			Tiles:    tiles,
			GFlops:   platform.GFlops(kernels.CholeskyFlops(n), r.MakespanSec),
			Makespan: r.MakespanSec,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("autotune: no candidate tile size divides N=%d", n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NB < out[j].NB })
	return out, nil
}

// Best returns the highest-GFLOP/s sample of a sweep.
func Best(points []Point) Point {
	best := points[0]
	for _, p := range points[1:] {
		if p.GFlops > best.GFlops {
			best = p
		}
	}
	return best
}

// Divisors returns the divisors of n within [lo, hi] — candidate tile sizes.
func Divisors(n, lo, hi int) []int {
	var out []int
	for d := lo; d <= hi && d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}
