// Deterministic parallel branch-and-bound.
//
// Naive parallel B&B — workers pulling nodes from a shared pool and pruning
// against a racily-updated incumbent — returns whatever schedule the OS
// scheduler's timing favored: with a bounded node budget the explored set,
// and with epsilon pruning even the winning makespan, depend on interleaving.
// This driver instead makes the parallel search a *speculative execution of
// a fixed sequential semantics*:
//
//  1. A sequential split phase expands the tree breadth-first (children in
//     dfs's exact branch order) until the frontier holds splitTarget
//     disjoint subtrees. The target is a constant — NOT scaled by Workers —
//     so the partition, and hence the Result, is identical for every worker
//     count.
//  2. The remaining node budget is divided into per-subtree slices by index
//     (earlier subtrees get the +1 remainders). Budget left over by subtrees
//     that exhaust early is redistributed to the cut ones in later rounds,
//     each re-run resuming (by deterministic re-exploration) with a strictly
//     larger slice.
//  3. The committed incumbent lives in an atomic uint64 (math.Float64bits),
//     published only by the in-order committer and snapshotted by workers
//     for pruning. Workers speculate: each claims the next subtree index,
//     searches it against its snapshot, and re-runs locally while the
//     snapshot is stale. The committer consumes results in subtree order;
//     a result whose snapshot no longer bit-matches the committed incumbent
//     is deterministically re-run inline. Improvements therefore commit in
//     (makespan, subtree index) order — the same reduction the sequential
//     loop performs.
//
// Workers only ever help or redo work; they cannot change what is committed.
// That is what makes Result — schedule, makespan, Nodes, Exhausted — exactly
// reproducible: `Workers: 8` returns byte-for-byte what `Workers: 1` does.
package cpsolve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
)

// splitTarget is the number of disjoint subtrees the sequential split phase
// carves the search tree into. It bounds usable parallelism (workers beyond
// it idle) and must not depend on Options.Workers: the partition defines the
// budget slicing, so scaling it with the pool would change the Result across
// worker counts.
const splitTarget = 64

// maxRounds caps budget-redistribution rounds. Each round re-runs only
// subtrees that both were cut and received new budget, so in the common
// cases (budget-bound search: every slice is consumed in round one;
// exhaustive search: round two finishes the stragglers) the cap is slack.
const maxRounds = 6

// step is one branch decision: task placed on an internal resource class.
type step struct{ task, class int32 }

// subtree is a root of an unexplored region, identified by the decision path
// from the tree root. Replaying the path reconstructs the solver state.
type subtree struct {
	path []step
}

// incumbent is the committed-prefix search state: the best schedule among
// the warm start, the split phase, and all committed subtrees. Only the
// sequential phases (split, committer) write it; workers read the published
// bits for pruning snapshots.
type incumbent struct {
	mk     float64
	worker []int
	start  []float64
	bits   atomic.Uint64 // math.Float64bits(mk), for worker snapshots

	// Live-progress tap, written only from the sequential phases (split,
	// committer), so the emitted frame stream is identical for every
	// Options.Workers value — the same argument that makes the Result
	// deterministic covers the telemetry.
	probe      *obs.Probe
	budget     int // total node budget of the search
	splitNodes int // nodes consumed by the sequential split phase
	lastDone   int // high-water mark of reported progress
}

func newIncumbent(pr *prob) *incumbent {
	g := &incumbent{
		mk:     math.Inf(1),
		worker: make([]int, pr.nTasks),
		start:  make([]float64, pr.nTasks),
		probe:  pr.opt.Probe,
		budget: pr.opt.NodeBudget,
	}
	g.bits.Store(math.Float64bits(g.mk))
	return g
}

// emitProgress builds one cpsolve frame from the committed state. Must only
// be called from the sequential phases, behind the probe nil fast-path.
func (g *incumbent) emitProgress(alloc []int, cutPending []bool, final bool) {
	p := g.probe
	if p == nil {
		return
	}
	total := g.splitNodes
	for _, a := range alloc {
		total += a
	}
	// A commit can shrink a completed subtree's alloc back to actual usage;
	// report the high-water mark so Done never regresses.
	if total < g.lastDone {
		total = g.lastDone
	}
	g.lastDone = total
	cut := 0
	for _, c := range cutPending {
		if c {
			cut++
		}
	}
	if !final && !p.Due(int64(total)) {
		return
	}
	p.Emit(obs.Frame{
		Source:       obs.SourceCPSolve,
		Done:         int64(total),
		Total:        int64(g.budget),
		Final:        final,
		Nodes:        int64(total),
		IncumbentSec: g.mk,
		CutSubtrees:  int64(cut),
	})
}

// publishMin lowers the published incumbent bits to mk if it improves. The
// CAS loop makes the publish safe regardless of caller, though in steady
// state only the committer writes.
func (g *incumbent) publishMin(mk float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) <= mk {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(mk)) {
			return
		}
	}
}

// commitSolution records a complete schedule held in solver state (worker
// and finish arrays) as the new committed incumbent.
func (g *incumbent) commitSolution(pr *prob, worker []int, finish []float64, mk float64) {
	g.mk = mk
	copy(g.worker, worker)
	for id := range pr.d.Tasks {
		ci := pr.workerCi[worker[id]]
		g.start[id] = finish[id] - pr.classExec[ci][pr.taskGroup[id]]
	}
	g.publishMin(mk)
}

// runResult is one subtree search outcome, tagged with the incumbent
// snapshot it pruned against so the committer can detect stale speculation.
type runResult struct {
	used      int
	cut       bool
	cancelled bool
	snapshot  uint64
	improved  bool
	mk        float64
	worker    []int
	start     []float64
}

// runSubtree searches one subtree with the given total node budget, pruning
// against the incumbent snapshot (as bits). The solver is reusable state;
// the run is a pure function of (prob, path, budget, snapshot).
func runSubtree(sv *solver, st subtree, budget int, snapshot uint64) runResult {
	sv.reset()
	mf := sv.replayPath(st.path)
	sv.bestMk = math.Float64frombits(snapshot)
	sv.improved = false
	sv.nodes = 0
	sv.budget = budget
	sv.cut = false
	sv.cancelled = false
	sv.dfs(len(st.path), mf)
	rr := runResult{used: sv.nodes, cut: sv.cut, cancelled: sv.cancelled, snapshot: snapshot}
	if sv.improved {
		rr.improved = true
		rr.mk = sv.bestMk
		rr.worker = append([]int(nil), sv.bestWorker...)
		rr.start = append([]float64(nil), sv.bestStart...)
	}
	return rr
}

// splitState is the outcome of the sequential split phase.
type splitState struct {
	frontier  []subtree
	nodes     int
	cut       bool
	cancelled bool
}

// split expands the tree FIFO from the root — each expansion enumerating
// children with exactly dfs's candidate selection, class order, and pruning
// — until the frontier holds splitTarget disjoint subtrees, drains, or hits
// the budget. Complete solutions met on the way are committed immediately,
// so the frontier is pruned against the best split-phase incumbent.
func (s *solver) split(g *incumbent) *splitState {
	sp := &splitState{}
	queue := []subtree{{}}
	qHead := 0
	budget := s.pr.opt.NodeBudget
	for qHead < len(queue) && len(queue)-qHead < splitTarget {
		if sp.nodes >= budget {
			sp.cut = true
			break
		}
		sp.nodes++
		if sp.nodes%cancelCheckStride == 0 && s.ctx.Err() != nil {
			sp.cancelled = true
			break
		}
		st := queue[qHead]
		qHead++
		s.reset()
		mf := s.replayPath(st.path)
		if len(s.ready) == 0 {
			if mf < g.mk {
				g.commitSolution(s.pr, s.worker, s.finish, mf)
			}
			continue
		}
		lb := mf
		for _, id := range s.ready {
			est := s.depsFinish(id)
			if est+s.pr.blFast[id] > lb {
				lb = est + s.pr.blFast[id]
			}
		}
		if lb >= g.mk-pruneEps {
			continue
		}
		cands := s.selectCands(0)
		for _, id := range cands {
			for _, ci := range s.pr.classOrder[s.pr.taskGroup[id]] {
				exec := s.pr.classExec[ci][s.pr.taskGroup[id]]
				if math.IsInf(exec, 1) {
					break
				}
				df := s.depsFinishOn(id, ci)
				_, wf := s.earliestFree(ci)
				start := wf
				if df > start {
					start = df
				}
				end := start + exec
				if end+s.tailAfter(id) >= g.mk-pruneEps {
					continue
				}
				child := subtree{path: make([]step, len(st.path)+1)}
				copy(child.path, st.path)
				child.path[len(st.path)] = step{task: int32(id), class: int32(ci)}
				queue = append(queue, child)
			}
		}
	}
	sp.frontier = queue[qHead:]
	return sp
}

// solveParallel runs the partitioned search: split, then redistribution
// rounds of per-subtree runs, sequential or speculative depending on
// Options.Workers — with identical results either way.
func solveParallel(ctx context.Context, pr *prob, g *incumbent) (*Result, error) {
	base := newSolver(pr, ctx)
	sp := base.split(g)
	if sp.cancelled || ctx.Err() != nil {
		return nil, fmt.Errorf("cpsolve: search cancelled after %d nodes: %w", sp.nodes, ctx.Err())
	}

	subtrees := sp.frontier
	alloc := make([]int, len(subtrees)) // total node budget granted (and, if cut, consumed) per subtree
	cutPending := make([]bool, len(subtrees))
	pending := make([]int, 0, len(subtrees))
	for i := range subtrees {
		pending = append(pending, i)
		cutPending[i] = true
	}
	rem := pr.opt.NodeBudget - sp.nodes
	g.splitNodes = sp.nodes
	if g.probe != nil {
		g.emitProgress(alloc, cutPending, false)
	}

	var pool []*solver
	for round := 0; round < maxRounds && len(pending) > 0 && rem > 0; round++ {
		// Grant this round's budget: equal shares by subtree index, earlier
		// indices taking the remainder. A pending subtree with no new grant
		// would deterministically reproduce its previous cut run, so only
		// granted subtrees re-run.
		grant := rem / len(pending)
		extra := rem % len(pending)
		run := make([]int, 0, len(pending))
		for j, i := range pending {
			gi := grant
			if j < extra {
				gi++
			}
			if gi == 0 {
				continue
			}
			alloc[i] += gi
			run = append(run, i)
		}

		var err error
		if pr.opt.Workers > 1 && len(run) > 1 {
			if pool == nil {
				n := pr.opt.Workers
				if n > len(run) {
					n = len(run)
				}
				pool = make([]*solver, n)
				for w := range pool {
					pool[w] = newSolver(pr, ctx)
				}
			}
			err = runRoundParallel(ctx, base, pool, subtrees, alloc, run, g, cutPending)
		} else {
			err = runRoundSequential(ctx, base, subtrees, alloc, run, g, cutPending)
		}
		if err != nil {
			total := sp.nodes
			for _, a := range alloc {
				total += a
			}
			return nil, fmt.Errorf("cpsolve: search cancelled after %d nodes: %w", total, err)
		}

		// Completed subtrees return their slack to the pool (their alloc is
		// frozen at actual usage by commitRun); cut subtrees consumed their
		// whole grant. The unconsumed pool is whatever the allocations don't
		// cover.
		next := pending[:0]
		for _, i := range pending {
			if cutPending[i] {
				next = append(next, i)
			}
		}
		pending = next
		rem = pr.opt.NodeBudget - sp.nodes
		for _, a := range alloc {
			rem -= a
		}
	}

	total := sp.nodes
	for _, a := range alloc {
		total += a
	}
	exhausted := !sp.cut && len(pending) == 0
	if g.probe != nil {
		g.emitProgress(alloc, cutPending, true)
	}

	start := make([]float64, pr.nTasks)
	copy(start, g.start)
	return &Result{
		Schedule: &sched.StaticSchedule{
			Worker:      append([]int{}, g.worker...),
			Start:       start,
			EstMakespan: g.mk,
		},
		Makespan:  g.mk,
		Nodes:     total,
		Exhausted: exhausted,
	}, nil
}

// commitRun folds one validated subtree result into the committed state:
// actual usage replaces the grant for completed subtrees (freeing the slack
// for the next round's redistribution), and strict improvements move the
// incumbent.
func commitRun(g *incumbent, rr runResult, alloc []int, cutPending []bool, i int) {
	if !rr.cut {
		alloc[i] = rr.used
		cutPending[i] = false
	}
	if rr.improved && rr.mk < g.mk {
		g.mk = rr.mk
		copy(g.worker, rr.worker)
		copy(g.start, rr.start)
		g.publishMin(rr.mk)
	}
	if g.probe != nil {
		g.emitProgress(alloc, cutPending, false)
	}
}

// runRoundSequential is the Workers≤1 path: each subtree runs inline against
// the exact committed incumbent. This loop *defines* the semantics the
// speculative path must reproduce.
func runRoundSequential(ctx context.Context, sv *solver, subtrees []subtree, alloc []int, run []int, g *incumbent, cutPending []bool) error {
	for _, i := range run {
		rr := runSubtree(sv, subtrees[i], alloc[i], math.Float64bits(g.mk))
		if rr.cancelled {
			return ctx.Err()
		}
		commitRun(g, rr, alloc, cutPending, i)
	}
	return nil
}

// runRoundParallel fans the round's subtrees over the worker pool.
//
// Workers claim subtree indices from an atomic counter, search against a
// snapshot of the published incumbent, and locally retry while the snapshot
// went stale before submitting — keeping re-search off the critical
// committer thread. The committer consumes results in claim order; the rare
// result whose snapshot still mismatches the committed incumbent (a commit
// landed between the worker's re-check and its turn) is re-run inline with
// the true incumbent. Every committed run is therefore a function of the
// committed prefix alone, which is what makes the round's outcome equal to
// runRoundSequential's bit for bit.
func runRoundParallel(ctx context.Context, base *solver, pool []*solver, subtrees []subtree, alloc []int, run []int, g *incumbent, cutPending []bool) error {
	type idxResult struct {
		pos int
		rr  runResult
	}
	results := make(chan idxResult, len(run)) // full capacity: sends never block, so workers always unwind
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := range pool {
		wg.Add(1)
		// The worker loop's ctx.Err() check is load-bearing twice over: it is
		// the cancellation path the cancel tests pin, and it is the exit gate
		// chollint's leakguard analyzer requires of every goroutine spawned in
		// this package.
		go func(sv *solver) {
			defer wg.Done()
			for {
				pos := int(next.Add(1)) - 1
				if pos >= len(run) || ctx.Err() != nil {
					return
				}
				i := run[pos]
				for {
					snap := g.bits.Load()
					rr := runSubtree(sv, subtrees[i], alloc[i], snap)
					if rr.cancelled || g.bits.Load() == snap {
						results <- idxResult{pos: pos, rr: rr}
						if rr.cancelled {
							return
						}
						break
					}
					// Snapshot went stale mid-run: retry against the fresh
					// incumbent before submitting.
				}
			}
		}(pool[w])
	}

	slots := make([]runResult, len(run))
	got := make([]bool, len(run))
	var err error
	for pos := 0; pos < len(run) && err == nil; pos++ {
		for !got[pos] && err == nil {
			// Also watch ctx directly: a cancelled worker abandons its
			// claimed slot without submitting, so waiting on the channel
			// alone could block forever.
			select {
			case r := <-results:
				slots[r.pos] = r.rr
				got[r.pos] = true
				if r.rr.cancelled {
					err = ctx.Err()
				}
			case <-ctx.Done():
				err = ctx.Err()
			}
		}
		if err != nil {
			break
		}
		rr := slots[pos]
		i := run[pos]
		if rr.snapshot != math.Float64bits(g.mk) {
			// Stale speculation: redo this subtree against the committed
			// incumbent. Bounded by the subtree's slice, and rare — only a
			// commit racing the worker's final re-check lands here.
			rr = runSubtree(base, subtrees[i], alloc[i], math.Float64bits(g.mk))
			if rr.cancelled {
				err = ctx.Err()
				break
			}
		}
		commitRun(g, rr, alloc, cutPending, i)
	}
	wg.Wait()
	return err
}
