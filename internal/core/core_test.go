package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/matrix"
	"repro/internal/simulator"
)

func TestFactorizeRoundTrip(t *testing.T) {
	a := matrix.RandSPD(64, 1)
	l, res, err := Factorize(a, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
	if l.N != 64 {
		t.Fatal("wrong factor size")
	}
}

func TestFactorizeBadTileSize(t *testing.T) {
	a := matrix.RandSPD(10, 1)
	if _, _, err := Factorize(a, 3, 2); err == nil {
		t.Fatal("expected tile-size error")
	}
}

func TestNewPlatform(t *testing.T) {
	for name, workers := range map[string]int{
		"mirage": 12, "mirage-nocomm": 12, "mirage-extended": 12,
		"homogeneous:9": 9, "related:20": 12,
	} {
		p, err := NewPlatform(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Workers() != workers {
			t.Fatalf("%s: %d workers", name, p.Workers())
		}
	}
	for _, bad := range []string{"nope", "homogeneous:x", "homogeneous:-1", "related:0", "related:x"} {
		if _, err := NewPlatform(bad); err == nil {
			t.Fatalf("%s: expected error", bad)
		}
	}
	p, _ := NewPlatform("mirage-nocomm")
	if p.Bus.Enabled {
		t.Fatal("nocomm platform has bus enabled")
	}
}

func TestNewScheduler(t *testing.T) {
	for _, name := range []string{"random", "greedy", "dmda", "dmdas", "dmda-nocomm", "trsm-cpu:6", "gemm-syrk-gpu", "partition:0.5"} {
		s, err := NewScheduler(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s == nil {
			t.Fatalf("%s: nil scheduler", name)
		}
	}
	for _, bad := range []string{"nope", "trsm-cpu:x", "trsm-cpu:0", "partition:x", "partition:1.5", "partition:-0.1", "partition:NaN"} {
		if _, err := NewScheduler(bad); err == nil {
			t.Fatalf("%s: expected error", bad)
		}
	}
}

func TestSimulateReport(t *testing.T) {
	p, _ := NewPlatform("mirage-nocomm")
	s, _ := NewScheduler("dmdas")
	rep, err := Simulate(context.Background(), 8, p, s, simulator.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GFlops > rep.BoundGFlops*(1+1e-9) {
		t.Fatal("performance above bound")
	}
	if rep.Efficiency <= 0 || rep.Efficiency > 1+1e-9 {
		t.Fatalf("efficiency %g", rep.Efficiency)
	}
	if rep.Scheduler != "dmdas" || rep.Tiles != 8 {
		t.Fatal("report metadata wrong")
	}
}

func TestBoundsFor(t *testing.T) {
	p, _ := NewPlatform("mirage")
	all, err := BoundsFor(8, p)
	if err != nil {
		t.Fatal(err)
	}
	if all.Mixed.MakespanSec < all.Area.MakespanSec-1e-12 {
		t.Fatal("mixed below area")
	}
}

func TestOptimizeSchedule(t *testing.T) {
	p, _ := NewPlatform("mirage-nocomm")
	r, err := OptimizeSchedule(context.Background(), 4, p, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan <= 0 {
		t.Fatal("bad makespan")
	}
	all, _ := BoundsFor(4, p)
	if r.Makespan < all.Best()-1e-9 {
		t.Fatal("CP schedule beats a lower bound")
	}
}

func TestRunExperiment(t *testing.T) {
	cfg := experiments.Quick()
	cfg.Sizes = []int{2, 4}
	out, err := RunExperiment(context.Background(), "table1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "29") {
		t.Fatalf("table1 output missing GEMM speedup:\n%s", out)
	}
	if _, err := RunExperiment(context.Background(), "nope", cfg); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestFactorizeLaplacian(t *testing.T) {
	a := matrix.Laplacian2D(6) // 36×36
	l, res, err := Factorize(a, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-13 {
		t.Fatalf("residual %g", res)
	}
	// L should be lower triangular.
	for i := 0; i < l.N; i++ {
		for j := i + 1; j < l.N; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("factor not lower triangular")
			}
		}
	}
}

func TestFactorizeLUAndQR(t *testing.T) {
	a := matrix.DiagDominant(48, 1)
	lu, res, err := FactorizeLU(a, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-11 || lu.N != 48 {
		t.Fatalf("LU residual %g", res)
	}
	b := matrix.RandSymmetric(48, 2)
	r, qres, err := FactorizeQR(b, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if qres > 1e-10 || r.N != 48 {
		t.Fatalf("QR residual %g", qres)
	}
	// R is upper triangular.
	for i := 0; i < r.N; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatal("R not upper triangular")
			}
		}
	}
	if _, _, err := FactorizeLU(a, 7, 1); err == nil {
		t.Fatal("expected tile-size error")
	}
	if _, _, err := FactorizeQR(b, 7, 1); err == nil {
		t.Fatal("expected tile-size error")
	}
}

func TestDAGFlopsPlatformByAlgorithm(t *testing.T) {
	for _, alg := range []string{"cholesky", "lu", "qr"} {
		d, err := DAGByAlgorithm(alg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if d.Algorithm != alg {
			t.Fatalf("algorithm %q", d.Algorithm)
		}
		fl, err := FlopsByAlgorithm(alg, 100)
		if err != nil || fl <= 0 {
			t.Fatalf("%s flops: %v %g", alg, err, fl)
		}
		p, err := PlatformForAlgorithm(alg, true)
		if err != nil {
			t.Fatal(err)
		}
		if p.Bus.Enabled {
			t.Fatal("nocomm flag ignored")
		}
		if err := p.Validate(d.Kinds()); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	if _, err := DAGByAlgorithm("nope", 4); err == nil {
		t.Fatal("expected error")
	}
	if _, err := FlopsByAlgorithm("nope", 4); err == nil {
		t.Fatal("expected error")
	}
	if _, err := PlatformForAlgorithm("nope", false); err == nil {
		t.Fatal("expected error")
	}
}

func TestSimulateDAGLU(t *testing.T) {
	d, _ := DAGByAlgorithm("lu", 6)
	fl, _ := FlopsByAlgorithm("lu", 6*960)
	p, _ := PlatformForAlgorithm("lu", true)
	s, _ := NewScheduler("dmdas")
	rep, err := SimulateDAG(context.Background(), d, fl, p, s, simulator.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GFlops > rep.BoundGFlops*(1+1e-9) {
		t.Fatal("LU performance above bound")
	}
}

func TestOptimizeDAGQR(t *testing.T) {
	d, _ := DAGByAlgorithm("qr", 3)
	p, _ := PlatformForAlgorithm("qr", true)
	r, err := OptimizeDAG(context.Background(), d, p, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(d, p); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPDEndToEnd(t *testing.T) {
	a := matrix.RandSPD(48, 9)
	b := make([]float64, 48)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, res, err := SolveSPD(a, b, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
	if len(x) != 48 {
		t.Fatal("wrong solution length")
	}
	if _, _, err := SolveSPD(a, b[:10], 8, 1); err == nil {
		t.Fatal("expected rhs-length error")
	}
}
