package replay

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// FuzzLanes is the lane-executor contract under random shapes: for a random
// DAG size, platform, scheduler, seed batch and divergence structure, the
// event-level batched path must stay digest-identical to serial simulation,
// and — with synthetic jitter rows agreeing up to a random divergence point,
// which drives the merge and snapshot-resume machinery hard — to
// single-lane execution of the same rows.
func FuzzLanes(f *testing.F) {
	// Genuine jitter batch on the paper platform.
	f.Add(uint8(3), uint8(0), uint8(0), uint8(2), int64(1), uint8(1), true)
	// Duplicate seeds (step 0): pure grouping collapse.
	f.Add(uint8(3), uint8(0), uint8(0), uint8(4), int64(7), uint8(0), true)
	// Jitter off: whole batch collapses to one simulation.
	f.Add(uint8(2), uint8(0), uint8(0), uint8(3), int64(1), uint8(2), false)
	// Non-seed-invariant scheduler: no grouping, every lane simulates.
	f.Add(uint8(2), uint8(1), uint8(2), uint8(3), int64(3), uint8(1), true)
	// Jitter-free platform under overhead: grouping despite Overhead on.
	f.Add(uint8(3), uint8(2), uint8(1), uint8(3), int64(5), uint8(1), true)
	// Late divergence point: maximal snapshot-resume prefix.
	f.Add(uint8(3), uint8(0), uint8(0), uint8(2), int64(9), uint8(200), true)
	f.Fuzz(func(t *testing.T, pU, platU, schedU, nSeedsU uint8, seedBase int64, divU uint8, overhead bool) {
		P := 3 + int(pU%4) // 3..6 tiles
		d := graph.Cholesky(P)
		var pf *platform.Platform
		switch platU % 3 {
		case 0:
			pf = platform.Mirage()
		case 1:
			pf = platform.WithoutCommunication(platform.Mirage())
		case 2:
			pf = platform.Homogeneous(6)
		}
		var mk func() sched.Scheduler
		switch schedU % 4 {
		case 0:
			mk = func() sched.Scheduler { return sched.NewDMDAS() }
		case 1:
			mk = func() sched.Scheduler { return sched.NewGreedy() }
		case 2:
			mk = func() sched.Scheduler { return sched.NewRandom() }
		case 3:
			mk = func() sched.Scheduler { return sched.NewDMDAR() }
		}
		nSeeds := 2 + int(nSeedsU%7) // 2..8 lanes
		step := int64(divU % 3)      // 0 ⇒ duplicate seeds
		seeds := make([]int64, nSeeds)
		for i := range seeds {
			seeds[i] = seedBase + int64(i)*step
		}
		opt := simulator.Options{Overhead: overhead}
		ctx := context.Background()
		workers := 1 + int(platU%3)

		got, err := Lanes(ctx, d, pf, mk, seeds, opt, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			o := opt
			o.Seed = seed
			want, err := simulator.Run(d, pf, mk(), o)
			if err != nil {
				t.Fatal(err)
			}
			if Digest(got[i]) != Digest(want) {
				t.Fatalf("P=%d plat=%d sched=%d seed %d: lane digest %016x, serial %016x",
					P, platU%3, schedU%4, seed, Digest(got[i]), Digest(want))
			}
		}

		// Synthetic divergence: every lane's row copies lane 0 for task IDs
		// below the divergence point and keeps its own draws beyond, so the
		// batch shares a prefix whose length the fuzzer controls. Ground
		// truth is single-lane execution of the identical rows (no merge, no
		// resume possible with one lane).
		if !jitterActive(pf, opt) {
			return
		}
		pp, err := simulator.Prepare(d, pf)
		if err != nil {
			t.Fatal(err)
		}
		nTasks := len(d.Tasks)
		div := int(divU) % (nTasks + 1)
		rows := make([][]float64, nSeeds)
		for i := range rows {
			rows[i] = make([]float64, nTasks)
			simulator.JitterRow(seedBase+int64(i), rows[i])
			if i > 0 {
				copy(rows[i][:div], rows[0][:div])
			}
		}
		lo := LaneOptions{
			SnapStride:  1 + int(pU%7),
			MergeStride: 1 + int(nSeedsU%9),
			ForceSplit:  divU&1 == 0,
			NoResume:    divU&2 == 0,
		}
		specs := make([]laneSpec, nSeeds)
		for i := range specs {
			specs[i] = laneSpec{seed: seedBase + int64(i), mk: mk, row: rows[i]}
		}
		batched, err := runLanes(ctx, pp, opt, specs, workers, &Pool{}, lo, nil, &LaneStats{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			solo := []laneSpec{{seed: specs[i].seed, mk: mk, row: rows[i]}}
			want, err := runLanes(ctx, pp, opt, solo, 1, &Pool{}, LaneOptions{}, nil, &LaneStats{})
			if err != nil {
				t.Fatal(err)
			}
			if Digest(batched[i]) != Digest(want[0]) {
				t.Fatalf("P=%d div=%d lane %d (opts %+v): batched digest %016x, single-lane %016x",
					P, div, i, lo, Digest(batched[i]), Digest(want[0]))
			}
		}
	})
}
