package cpsolve

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/platform"
)

// resultDigest folds every observable field of a Result into one FNV-64a
// hash (same style as internal/simulator's determinism tests): float fields
// enter as their exact bit patterns, so two digests match only if the
// results are byte-identical.
func resultDigest(r *Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	i := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	f(r.Makespan)
	i(r.Nodes)
	if r.Exhausted {
		i(1)
	} else {
		i(0)
	}
	f(r.Schedule.EstMakespan)
	for id := range r.Schedule.Worker {
		i(r.Schedule.Worker[id])
		f(r.Schedule.Start[id])
	}
	return h.Sum64()
}

// TestParallelBitIdenticalAcrossWorkers is the core determinism property:
// for every platform shape, DAG size, budget regime (budget-bound and
// exhaustive), and comm model, the Result must be byte-identical for any
// Workers value — the parallel search is a speculative execution of the
// sequential semantics, not a different search.
func TestParallelBitIdenticalAcrossWorkers(t *testing.T) {
	platforms := map[string]*platform.Platform{
		"mirage":        platform.Mirage(),
		"mirage-nocomm": platform.WithoutCommunication(platform.Mirage()),
		"homogeneous:4": platform.Homogeneous(4),
		"related:20":    platform.Related(platform.Mirage(), 20),
	}
	cases := []struct {
		tiles  int
		budget int
		beam   int
		hop    float64
	}{
		{tiles: 4, budget: 3000, beam: 2, hop: 0},     // budget-bound
		{tiles: 4, budget: 3000, beam: 3, hop: 5e-4},  // budget-bound, comm-aware
		{tiles: 2, budget: 200000, beam: 2, hop: 0},   // exhaustive
		{tiles: 5, budget: 12000, beam: 2, hop: 1e-3}, // deeper tree
	}
	for name, p := range platforms {
		for _, c := range cases {
			d := graph.Cholesky(c.tiles)
			var ref *Result
			var refDigest uint64
			for _, workers := range []int{1, 2, 3, 8} {
				r, err := Solve(d, p, Options{
					NodeBudget: c.budget, Beam: c.beam, CommHopSec: c.hop, Workers: workers,
				})
				if err != nil {
					t.Fatalf("%s P=%d budget=%d workers=%d: %v", name, c.tiles, c.budget, workers, err)
				}
				dg := resultDigest(r)
				if ref == nil {
					ref, refDigest = r, dg
					continue
				}
				if dg != refDigest {
					t.Errorf("%s P=%d budget=%d hop=%g: workers=%d digest %016x != workers=1 digest %016x (mk %v vs %v, nodes %d vs %d, exhausted %v vs %v)",
						name, c.tiles, c.budget, c.hop, workers, dg, refDigest,
						r.Makespan, ref.Makespan, r.Nodes, ref.Nodes, r.Exhausted, ref.Exhausted)
				}
			}
		}
	}
}

// TestParallelCancellationUnwindsWorkers proves that cancelling a parallel
// search returns context.Canceled promptly and that every worker goroutine
// unwinds (SolveContext joins the pool before returning).
func TestParallelCancellationUnwindsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	d := graph.Cholesky(10)
	p := platform.WithoutCommunication(platform.Mirage())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := SolveContext(ctx, d, p, Options{NodeBudget: 1 << 30, Workers: 8})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parallel search did not unwind within 5s of cancellation")
	}
	// All 8 workers must be gone: poll briefly (the runtime reuses exiting
	// goroutines lazily) and require the count to settle at the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExhaustedBoundary pins the tightened Exhausted semantics: a search
// that fully explores the space while stopping exactly at its budget still
// proves exhaustion, and one node less must report the space as cut.
//
// Beam 1 on Cholesky(4) keeps the whole tree inside the sequential split
// phase (the frontier grows by at most one per expansion, far below the
// split target), where "stops exactly at the budget" is a well-defined
// boundary: the exploration node count is budget-independent until the
// budget cuts it. Smaller DAGs are no use here — their HEFT warm start is
// CP-optimal, so the proof finishes in one node.
func TestExhaustedBoundary(t *testing.T) {
	d := graph.Cholesky(4)
	p := platform.WithoutCommunication(platform.Mirage())
	full, err := Solve(d, p, Options{NodeBudget: 1 << 24, Beam: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Exhausted {
		t.Fatalf("ample budget should exhaust Cholesky(4), explored %d nodes", full.Nodes)
	}
	if full.Nodes < 2 {
		t.Fatalf("degenerate full exploration (%d nodes): the boundary below would test the budget default, not the cut", full.Nodes)
	}

	exact, err := Solve(d, p, Options{NodeBudget: full.Nodes, Beam: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exhausted {
		t.Fatalf("budget exactly at the full exploration size (%d) must still prove exhaustion", full.Nodes)
	}
	if resultDigest(exact) != resultDigest(full) {
		t.Fatalf("exact-budget run diverged from ample-budget run")
	}

	// One node less: the search stops exactly at its budget with the space
	// only pruned, not proven — the old `exhausted && nodes <= budget`
	// formula could claim exhaustion here.
	cut, err := Solve(d, p, Options{NodeBudget: full.Nodes - 1, Beam: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Exhausted {
		t.Fatalf("budget %d (< full exploration %d) claims exhaustion it did not prove", full.Nodes-1, full.Nodes)
	}
	if cut.Nodes != full.Nodes-1 {
		t.Fatalf("cut run explored %d nodes, want exactly the budget %d", cut.Nodes, full.Nodes-1)
	}
}

// TestNodesNeverExceedBudget pins the accounting side of the Exhausted fix:
// the reported node count stays within the budget (the old solver could
// report budget+1).
func TestNodesNeverExceedBudget(t *testing.T) {
	d := graph.Cholesky(6)
	p := platform.Mirage()
	for _, budget := range []int{1, 50, 777, 5000} {
		for _, workers := range []int{1, 4} {
			r, err := Solve(d, p, Options{NodeBudget: budget, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if r.Nodes > budget {
				t.Fatalf("budget=%d workers=%d: reported %d nodes", budget, workers, r.Nodes)
			}
		}
	}
}
