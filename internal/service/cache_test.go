package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("c", 3) // evicts b: a was refreshed by the Get above
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("update lost: %v", v)
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("Stats() = %d, %d", hits, misses)
	}
}

// TestLRUConcurrentMixedLoad hammers one cache from many goroutines with
// overlapping hit/miss/evict traffic; run under -race this is the
// concurrency-safety test the issue asks for.
func TestLRUConcurrentMixedLoad(t *testing.T) {
	c := NewLRU(64)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%100) // >capacity key space forces evictions
				if v, ok := c.Get(key); ok {
					if v.(string) != key {
						t.Errorf("cache returned %v for %s", v, key)
						return
					}
				} else {
					c.Put(key, key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}

// TestFlightGroupRunsOnce launches many concurrent misses of one key; the
// expensive computation must execute exactly once and every caller must see
// its value.
func TestFlightGroupRunsOnce(t *testing.T) {
	var g flightGroup
	var runs atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, 20)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "key", func() (any, error) {
				runs.Add(1)
				<-release
				return "value", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let followers queue up behind the leader before releasing it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}

// TestFlightGroupFollowerHonoursContext: a follower whose context expires
// stops waiting even though the leader's computation is still running.
func TestFlightGroupFollowerHonoursContext(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go g.Do(context.Background(), "key", func() (any, error) {
		close(leaderIn)
		<-release
		return nil, nil
	})
	<-leaderIn
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "key", func() (any, error) { return nil, nil })
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v, want shared deadline error", shared, err)
	}
	close(release)
}
