package cpsolve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/platform"
)

// TestSolveContextDeadline gives a search that would visit millions of nodes
// a budget far beyond the deadline: the branch-and-bound must bail out of
// node expansion within its polling stride and report the context error.
func TestSolveContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SolveContext(ctx, graph.Cholesky(10), platform.Mirage(), Options{NodeBudget: 200_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled search took %v; cancellation is not prompt", el)
	}
}

func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, graph.Cholesky(4), platform.Mirage(), Options{NodeBudget: 1000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveBackgroundUnaffected(t *testing.T) {
	res, err := Solve(graph.Cholesky(3), platform.Mirage(), Options{NodeBudget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
}
