// Package simulator is the reproduction's SimGrid+StarPU substitute: a
// deterministic discrete-event simulator executing a task DAG on a modelled
// heterogeneous platform under a pluggable dynamic scheduling policy.
//
// The modelling level matches the paper's simulation setup:
//
//   - per-(kernel, resource-class) execution times from the platform model;
//   - push-time scheduling: when a task's dependencies complete, the
//     scheduler assigns it to a worker queue (FIFO for dmda, priority-
//     sorted for dmdas), exactly StarPU's dm* behaviour;
//   - data transfers over per-accelerator PCI links with prefetch at
//     assignment time, MSI-style tile replication and invalidation on
//     write, and serialization on each link (the fluid contention model);
//   - an optional runtime-overhead + deterministic-jitter model standing in
//     for "actual execution" runs (see DESIGN.md: heterogeneous actual
//     executions cannot be performed without real GPUs).
//
// Simulations are fully deterministic for a given (DAG, platform, scheduler,
// seed) tuple.
//
// The event loop is allocation-free per event: tile locations, LRU stamps
// and pin counts live in dense arrays indexed by (tile, memory node), the
// event heap is a concrete type (no interface boxing), worker queues are
// head-indexed rings, and the ready scan only revisits workers whose state
// changed since the last scan. The determinism and golden tests in this
// package pin the pre-optimisation schedules bit for bit.
package simulator

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Options tunes a simulation run.
type Options struct {
	// Seed feeds the scheduler (random policy) and the jitter model.
	Seed int64
	// Overhead applies the platform's per-task runtime overhead and
	// multiplicative jitter, emulating an actual (non-simulated) run.
	Overhead bool
	// WorkStealing lets an idle worker with an empty queue migrate the
	// lowest-priority queued task from the most-loaded other worker
	// (StarPU's `ws` family layered on any push policy). Hint restrictions
	// are honoured via sched.ClassRestricter; static injections
	// (sched.Gater implementations) are never stolen from.
	WorkStealing bool
	// Recorder, when non-nil, captures task-ready, scheduling-decision
	// (with every candidate's completion-time terms), transfer, eviction
	// and worker-idle events as the run unfolds. Recording never changes
	// the schedule; nil keeps the event loop allocation-free.
	Recorder *obs.Recorder
	// Probe, when non-nil, receives live progress frames (completed/total
	// tasks, simulated clock, queue depth, per-worker busy time) at the
	// probe's own bounded cadence while the run executes. Same contract as
	// Recorder: probing never changes the schedule, and nil keeps the
	// event loop allocation-free.
	Probe *obs.Probe
}

// Result is the outcome of one simulated execution.
type Result struct {
	MakespanSec   float64
	Start, End    []float64 // per task ID
	Worker        []int     // per task ID
	TransferSec   float64   // cumulative time of all PCI hops
	TransferCount int       // number of tile hops
	BusySec       []float64 // per worker: total execution time
	IdleSec       []float64 // per worker: makespan − busy
	Evictions     int       // tiles dropped from device memory (LRU)
	Writebacks    int       // evictions that required a device→host copy
	StallSec      float64   // worker time spent waiting for data (start − max(free, now))
}

// GFlops returns the achieved performance for an algorithm of the given
// total flop count.
func (r *Result) GFlops(flops float64) float64 {
	return platform.GFlops(flops, r.MakespanSec)
}

type queueEntry struct {
	task *graph.Task
	prio float64
	seq  int
}

// wqueue is a head-indexed worker queue: popping the front advances a
// cursor instead of reslicing, so the backing array is reused rather than
// abandoned and re-grown on every dequeue/enqueue cycle.
type wqueue struct {
	items []queueEntry
	head  int
}

func (q *wqueue) size() int            { return len(q.items) - q.head }
func (q *wqueue) at(i int) *queueEntry { return &q.items[q.head+i] }

//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (q *wqueue) popFront() queueEntry {
	e := q.items[q.head]
	q.items[q.head] = queueEntry{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e
}

//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (q *wqueue) pushBack(e queueEntry) { q.items = append(q.items, e) }

// insert places e at position pos (relative to the head). When dead slots
// exist before the head it shifts the short prefix left into them, which is
// the cheap direction for the common high-priority-near-head insert.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (q *wqueue) insert(pos int, e queueEntry) {
	if pos == q.size() {
		q.pushBack(e)
		return
	}
	if q.head > 0 {
		copy(q.items[q.head-1:], q.items[q.head:q.head+pos])
		q.head--
		q.items[q.head+pos] = e
		return
	}
	q.items = append(q.items, queueEntry{})
	copy(q.items[pos+1:], q.items[pos:])
	q.items[pos] = e
}

//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (q *wqueue) remove(pos int) queueEntry {
	i := q.head + pos
	e := q.items[i]
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = queueEntry{}
	q.items = q.items[:len(q.items)-1]
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e
}

type event struct {
	time   float64
	seq    int
	worker int
	task   *graph.Task
}

func eventLess(a, b event) bool {
	// Tie-break on the exact stored times; equal keys fall through to the
	// deterministic sequence number.
	if a.time != b.time { //chollint:floateq
		return a.time < b.time
	}
	return a.seq < b.seq
}

// eventHeap is a concrete binary min-heap. container/heap would box every
// pushed and popped event through an interface, one allocation each — the
// single largest per-event allocation source before the performance pass.
type eventHeap []event

//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r, small := 2*i+1, 2*i+2, i
		if l < n && eventLess(s[l], s[small]) {
			small = l
		}
		if r < n && eventLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// Prep is the immutable per-(DAG, platform) precomputation shared by every
// run of that pair: validation, the dense footprint-tile indexing, the
// per-(class, task) execution-time table, the per-tile PCI hop times, the
// initial dependency counts and the node capacities. One Prep may back any
// number of concurrent runs — nothing in it is mutated after Prepare — which
// is what lets internal/replay advance a whole batch of seeds or sweep cells
// without re-deriving the census and cost tables per lane.
type Prep struct {
	d *graph.DAG
	p *platform.Platform

	nNodes int
	nTiles int
	nTasks int

	footTiles []int32
	footOff   []int32
	taskExec  []float64 // [class*nTasks + id]
	tileHop   []float64 // per tile
	capacity  []int     // per node, in tiles; 0 = unlimited
}

// DAG returns the task graph the preparation was built for.
func (pp *Prep) DAG() *graph.DAG { return pp.d }

// Platform returns the platform model the preparation was built for.
func (pp *Prep) Platform() *platform.Platform { return pp.p }

// Tiles returns the number of distinct footprint tiles of the DAG.
func (pp *Prep) Tiles() int { return pp.nTiles }

type state struct {
	pp  *Prep
	d   *graph.DAG
	p   *platform.Platform
	s   sched.Scheduler
	opt Options

	now        float64
	queues     []wqueue
	executing  []bool
	workerFree []float64
	estFree    []float64
	dataReady  []float64
	doneTask   []bool
	linkFree   []float64 // per memory node (index ≥ 1 used)
	seq        int

	// Policy capabilities and constants resolved once per run.
	ordered bool
	gater   sched.Gater
	restr   sched.ClassRestricter
	costm   sched.CostModel
	rec     *obs.Recorder
	probe   *obs.Probe
	nNodes  int
	nTiles  int
	nTasks  int

	// Size-aware costs, resolved once from the platform cost model so the
	// event loop never re-prices a task or tile: taskExec[class*nTasks+id]
	// is the execution time of task id on that class, tileHop[ti] the PCI
	// hop time of tile ti (uniform tiles share the legacy TileBytes hop).
	// Shared read-only with the Prep that produced them.
	taskExec []float64
	tileHop  []float64

	// Tile state, dense-indexed. Tiles are numbered in first-appearance
	// order over the tasks' footprints; footTiles/footOff give each task's
	// footprint as tile indices, parallel to Task.Footprint (shared
	// read-only with the Prep).
	footTiles   []int32
	footOff     []int32
	loc         []bool  // [tile*nNodes + node]: node holds a valid copy
	locCount    []int32 // per tile: number of valid copies
	workerDirty []bool  // workers whose queues/executing state changed since the last ready scan

	// Device memory manager (StarPU-style LRU with write-back): per node,
	// the resident tiles with last-use stamps and pin counts (tiles needed
	// by tasks assigned-but-not-finished on that node cannot be evicted).
	capacity      []int     // shared read-only with the Prep
	lastUse       []int     // [node*nTiles + tile]: residency stamp, −1 = absent
	pins          []int32   // [node*nTiles + tile]
	residentTiles [][]int32 // per node: tile indices currently resident

	// Event-loop ownership, so a run can be checkpointed and resumed.
	indeg  []int32
	events eventHeap
	done   int

	// Decision accounting for delta replay: decisions counts scheduler
	// Assign calls; decTrace, when non-nil (recording runs), stores the
	// assigned task IDs in decision order; snapEvery > 0 takes a Snapshot
	// every snapEvery completion events.
	decisions int
	decTrace  []int32
	snapEvery int
	snaps     []*Snapshot

	// Start accounting for lane replay: started counts task starts (jitter
	// draws consumed); startTrace, when non-nil, stores task IDs in start
	// order; jitU, when non-nil, is a precomputed per-task jitter-draw table
	// consulted instead of seeding a generator per task (see jitter.go —
	// values are bit-identical by construction).
	started    int
	startTrace []int32
	jitU       []float64

	res *Result
}

// Arena owns the recyclable mutable state of one simulation lane. A zero
// Arena is ready to use; passing the same Arena to successive runs reuses
// its dense arrays, queue rings and event heap instead of reallocating them
// — the per-run state cost of a long sweep amortizes to the Result alone.
// An Arena must not be shared by concurrent runs (pool one per goroutine,
// e.g. via replay.Pool).
type Arena struct {
	st state
}

// footprint returns task t's tile indices, parallel to t.Footprint.
func (st *state) footprint(t *graph.Task) []int32 {
	return st.footTiles[st.footOff[t.ID]:st.footOff[t.ID+1]]
}

// View interface for schedulers ------------------------------------------------

func (st *state) Now() float64          { return st.now }
func (st *state) Workers() int          { return st.p.Workers() }
func (st *state) WorkerClass(w int) int { return st.p.WorkerClass(w) }
func (st *state) QueueEnd(w int) float64 {
	return st.estFree[w]
}
func (st *state) ExecTime(w int, t *graph.Task) float64 {
	return st.taskExec[st.p.WorkerClass(w)*st.nTasks+t.ID]
}

// TransferEstimate sums one PCI hop per missing tile (two for GPU↔GPU),
// ignoring link contention — the same estimation level StarPU's dmda uses.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) TransferEstimate(w int, t *graph.Task) float64 {
	if !st.p.Bus.Enabled {
		return 0
	}
	node := st.p.MemoryNode(w)
	total := 0.0
	for _, ti := range st.footprint(t) {
		base := int(ti) * st.nNodes
		if st.loc[base+node] {
			continue
		}
		if node == 0 || st.loc[base] {
			total += st.tileHop[ti]
		} else {
			total += 2 * st.tileHop[ti]
		}
	}
	return total
}

// ---------------------------------------------------------------------------

// Run simulates the DAG on the platform under the given scheduler.
func Run(d *graph.DAG, p *platform.Platform, s sched.Scheduler, opt Options) (*Result, error) {
	return RunContext(context.Background(), d, p, s, opt)
}

// cancelCheckStride is how many completion events the event loop processes
// between context checks: frequent enough that cancellation lands within
// microseconds of simulated work, rare enough to keep ctx.Err off the hot
// path.
const cancelCheckStride = 32

// RunContext is Run with cancellation: the event loop polls ctx every few
// events and abandons the simulation with ctx's error once it is done.
//
// It is exactly Prepare followed by Prep.Run with a throwaway arena, so the
// serial path and the batched replay paths share one event loop by
// construction — bit-identical Results are a structural property, re-checked
// by internal/replay's equivalence suite rather than established by it.
func RunContext(ctx context.Context, d *graph.DAG, p *platform.Platform, s sched.Scheduler, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simulator: run cancelled: %w", err)
	}
	// One allocation for preparation and per-run state together: the serial
	// path must cost no more than the pre-Prep/Arena-split event loop did.
	var run struct {
		pp Prep
		a  Arena
	}
	if err := prepareInto(&run.pp, d, p); err != nil {
		return nil, err
	}
	return run.pp.Run(ctx, s, opt, &run.a)
}

// Prepare validates the DAG/platform pair and builds the immutable shared
// tables every run of that pair needs: dense footprint-tile indexing,
// per-tile PCI hop times, the per-(class, task) execution-time table, the
// initial dependency counts and the device capacities.
func Prepare(d *graph.DAG, p *platform.Platform) (*Prep, error) {
	pp := &Prep{}
	if err := prepareInto(pp, d, p); err != nil {
		return nil, err
	}
	return pp, nil
}

// prepareInto is Prepare writing into caller-provided storage, so the serial
// path can co-allocate the Prep with its Arena.
func prepareInto(pp *Prep, d *graph.DAG, p *platform.Platform) error {
	if err := p.Validate(d.Kinds()); err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return err
	}
	n := len(d.Tasks)
	*pp = Prep{d: d, p: p, nNodes: p.MemoryNodes(), nTasks: n}

	// Index every footprint tile densely, and record each task's footprint
	// as tile indices. All tiles start valid on the host node.
	totalRefs := 0
	for _, t := range d.Tasks {
		totalRefs += len(t.Footprint)
	}
	pp.footTiles = make([]int32, totalRefs)
	pp.footOff = make([]int32, n+1)
	tileIdx := make(map[[2]int]int32, totalRefs/4+1)
	// Per-tile PCI hop times, resolved through the cost model from each
	// tile's actual bytes. Tiles at the reference size reuse the legacy
	// TileBytes hop value, so uniform-tile runs are bit-identical to the
	// fixed-nb simulator.
	cm := p.CostModel()
	defHop := p.Bus.TransferTime(p.TileBytes)
	pp.tileHop = make([]float64, 0, totalRefs/4+1)
	off := 0
	for _, t := range d.Tasks {
		pp.footOff[t.ID] = int32(off)
		for _, ref := range t.Footprint {
			key := [2]int{ref.I, ref.J}
			ti, ok := tileIdx[key]
			if !ok {
				ti = int32(len(tileIdx))
				tileIdx[key] = ti
				if nb := d.TileSize(ref.I, ref.J); nb > 0 {
					pp.tileHop = append(pp.tileHop, cm.TransferTime(float64(nb)*float64(nb)*8))
				} else {
					pp.tileHop = append(pp.tileHop, defHop)
				}
			}
			pp.footTiles[off] = ti
			off++
		}
	}
	pp.footOff[n] = int32(off)
	pp.nTiles = len(tileIdx)
	// Per-task, per-class execution times under the cost model. For NB = 0
	// tasks the model returns the calibrated table entry itself.
	pp.taskExec = make([]float64, len(p.Classes)*n)
	for ci := range p.Classes {
		for _, t := range d.Tasks {
			pp.taskExec[ci*n+t.ID] = cm.Time(ci, t.Kind, t.NB)
		}
	}
	pp.capacity = make([]int, pp.nNodes)
	for node := 0; node < pp.nNodes; node++ {
		pp.capacity[node] = p.NodeCapacityTiles(node)
	}
	return nil
}

// Run simulates the prepared DAG/platform pair under the given scheduler,
// recycling a's per-run state (a nil arena uses a temporary one). The
// scheduler's Init is called here; one scheduler instance must not be shared
// by concurrent runs.
func (pp *Prep) Run(ctx context.Context, s sched.Scheduler, opt Options, a *Arena) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simulator: run cancelled: %w", err)
	}
	if a == nil {
		a = &Arena{}
	}
	st := &a.st
	st.reset(pp, s, opt)
	s.Init(pp.d, pp.p, opt.Seed)
	st.start()
	return st.loop(ctx)
}

// resetF64 returns s resized to n and zeroed, reusing its backing array.
func resetF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func resetI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// reset rebinds the arena state to a (prep, scheduler, options) run, reusing
// every dense array whose capacity suffices. Only the Result is freshly
// allocated — it escapes to the caller and outlives the arena.
func (st *state) reset(pp *Prep, s sched.Scheduler, opt Options) {
	n, nW, nNodes := pp.nTasks, pp.p.Workers(), pp.nNodes
	st.pp = pp
	st.d, st.p = pp.d, pp.p
	st.s, st.opt = s, opt
	st.now = 0
	st.seq = 0
	st.done = 0
	st.decisions = 0
	st.decTrace = nil
	st.snapEvery = 0
	st.snaps = nil
	st.started = 0
	st.startTrace = nil
	st.jitU = nil
	st.ordered = s.Ordered()
	st.gater, _ = s.(sched.Gater)
	st.restr, _ = s.(sched.ClassRestricter)
	st.costm, _ = s.(sched.CostModel)
	st.rec = opt.Recorder
	st.probe = opt.Probe
	st.nNodes, st.nTiles, st.nTasks = nNodes, pp.nTiles, n
	st.footTiles, st.footOff = pp.footTiles, pp.footOff
	st.taskExec, st.tileHop = pp.taskExec, pp.tileHop
	st.capacity = pp.capacity

	if cap(st.queues) < nW {
		st.queues = make([]wqueue, nW)
	}
	st.queues = st.queues[:nW]
	for i := range st.queues {
		st.queues[i].head = 0
		if st.queues[i].items != nil {
			st.queues[i].items = st.queues[i].items[:0]
		}
	}
	st.executing = resetBools(st.executing, nW)
	st.workerFree = resetF64(st.workerFree, nW)
	st.estFree = resetF64(st.estFree, nW)
	st.workerDirty = resetBools(st.workerDirty, nW)
	st.dataReady = resetF64(st.dataReady, n)
	st.doneTask = resetBools(st.doneTask, n)
	st.linkFree = resetF64(st.linkFree, nNodes)

	st.loc = resetBools(st.loc, pp.nTiles*nNodes)
	st.locCount = resetI32(st.locCount, pp.nTiles)
	for ti := 0; ti < pp.nTiles; ti++ {
		st.loc[ti*nNodes] = true // host copy
		st.locCount[ti] = 1
	}
	if cap(st.lastUse) < nNodes*pp.nTiles {
		st.lastUse = make([]int, nNodes*pp.nTiles)
	}
	st.lastUse = st.lastUse[:nNodes*pp.nTiles]
	for i := range st.lastUse {
		st.lastUse[i] = -1
	}
	st.pins = resetI32(st.pins, nNodes*pp.nTiles)
	if cap(st.residentTiles) < nNodes {
		st.residentTiles = make([][]int32, nNodes)
	}
	st.residentTiles = st.residentTiles[:nNodes]
	for i := range st.residentTiles {
		if st.residentTiles[i] != nil {
			st.residentTiles[i] = st.residentTiles[i][:0]
		}
	}

	st.indeg = resetI32(st.indeg, n)
	for _, t := range pp.d.Tasks {
		st.indeg[t.ID] = int32(len(t.Pred))
	}
	st.events = st.events[:0]

	st.res = &Result{
		Start:   make([]float64, n),
		End:     make([]float64, n),
		Worker:  make([]int, n),
		BusySec: make([]float64, nW),
		IdleSec: make([]float64, nW),
	}
	for i := range st.res.Worker {
		st.res.Worker[i] = -1
	}
}

// start performs the root assignments and the first ready scan, seeding the
// event heap. Resumed runs skip it — the restored snapshot already contains
// the in-flight events.
func (st *state) start() {
	for _, t := range st.d.Tasks {
		if st.indeg[t.ID] == 0 {
			st.assign(t)
		}
	}
	st.tryStartAll(&st.events)
}

// loop drains the event heap to completion and finalizes the Result. It is
// the single event loop behind the serial, batched, recorded and resumed
// paths; the lane executor drives the same processEvent/finalize pair one
// event at a time (LaneRun.Step), so every path shares one advance function.
func (st *state) loop(ctx context.Context) (*Result, error) {
	n := st.nTasks
	for len(st.events) > 0 {
		if st.snapEvery > 0 && st.done%st.snapEvery == 0 {
			st.snapshot()
		}
		if st.done%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("simulator: run cancelled after %d of %d tasks: %w", st.done, n, err)
			}
		}
		st.processEvent()
	}
	return st.finalize()
}

// processEvent pops and applies one completion event: retire the task,
// invalidate written tiles, release pins, assign unlocked successors and
// start everything now startable. The caller guarantees the heap is
// non-empty.
//
//chol:hotpath per-event kernel shared by loop and the lane advance; allocs/op pinned by cmd/cholbench sim/*
func (st *state) processEvent() {
	ev := st.events.pop()
	st.now = ev.time
	w := ev.worker
	st.executing[w] = false
	st.workerFree[w] = st.now
	st.workerDirty[w] = true
	st.doneTask[ev.task.ID] = true
	st.done++
	// Invalidate: the written tile's only valid copy is on this node.
	node := st.p.MemoryNode(w)
	foot := st.footprint(ev.task)
	for k, ref := range ev.task.Footprint {
		if ref.Mode != graph.ReadWrite {
			continue
		}
		ti := int(foot[k])
		base := ti * st.nNodes
		for other := 0; other < st.nNodes; other++ {
			if other == node || !st.loc[base+other] {
				continue
			}
			st.loc[base+other] = false
			if other != 0 {
				st.removeResident(other, ti)
			}
		}
		st.loc[base+node] = true
		st.locCount[ti] = 1
		if node != 0 && st.lastUse[node*st.nTiles+ti] < 0 {
			st.addResident(node, ti)
		}
	}
	st.pinFootprint(ev.task, node, -1)
	for _, sid := range ev.task.Succ {
		st.indeg[sid]--
		if st.indeg[sid] == 0 {
			st.assign(st.d.Tasks[sid])
		}
	}
	st.tryStartAll(&st.events)
	if st.probe != nil && st.probe.Due(int64(st.done)) {
		st.emitProgress(false)
	}
}

// finalize checks completion and fills the derived Result fields.
func (st *state) finalize() (*Result, error) {
	if st.done != st.nTasks {
		return nil, fmt.Errorf("simulator: deadlock — %d of %d tasks completed", st.done, st.nTasks)
	}
	mk := 0.0
	for _, e := range st.res.End {
		if e > mk {
			mk = e
		}
	}
	st.res.MakespanSec = mk
	for w := range st.res.IdleSec {
		st.res.IdleSec[w] = mk - st.res.BusySec[w]
	}
	if st.probe != nil {
		st.emitProgress(true)
	}
	return st.res, nil
}

// emitProgress builds and emits one live-progress frame. Off the hot path
// by construction: loop reaches it at most once per probe interval, behind
// the single-pointer-check fast path, so the disabled run stays
// allocation-free. BusySec aliases the live result array — retaining sinks
// must Frame.Clone (obs.FrameRing does).
func (st *state) emitProgress(final bool) {
	p := st.probe
	if p == nil {
		return
	}
	queued := 0
	for i := range st.queues {
		queued += st.queues[i].size()
	}
	p.Emit(obs.Frame{
		Source:     obs.SourceSimulate,
		Done:       int64(st.done),
		Total:      int64(st.nTasks),
		Final:      final,
		SimSec:     st.now,
		ReadyDepth: queued,
		BusySec:    st.res.BusySec,
	})
}

// addResident records tile ti on node with a fresh LRU stamp.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) addResident(node, ti int) {
	st.lastUse[node*st.nTiles+ti] = st.seq
	st.seq++
	st.residentTiles[node] = append(st.residentTiles[node], int32(ti))
}

// removeResident drops tile ti from node's residency set.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) removeResident(node, ti int) {
	st.lastUse[node*st.nTiles+ti] = -1
	rs := st.residentTiles[node]
	for i, v := range rs {
		if int(v) == ti {
			rs[i] = rs[len(rs)-1]
			st.residentTiles[node] = rs[:len(rs)-1]
			return
		}
	}
}

// pinFootprint pins (or unpins, delta −1) a task's tiles on a memory node so
// the LRU eviction cannot drop data a queued task depends on.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) pinFootprint(t *graph.Task, node, delta int) {
	if node == 0 {
		return
	}
	base := node * st.nTiles
	for _, ti := range st.footprint(t) {
		st.pins[base+int(ti)] += int32(delta)
		if st.pins[base+int(ti)] < 0 {
			st.pins[base+int(ti)] = 0
		}
	}
}

// addCopy records a resident tile on an accelerator node and evicts LRU
// tiles if the node is over capacity.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) addCopy(node, ti int) {
	if node == 0 {
		return
	}
	if st.lastUse[node*st.nTiles+ti] >= 0 {
		// Refresh the stamp of an already-resident tile.
		st.lastUse[node*st.nTiles+ti] = st.seq
		st.seq++
	} else {
		st.addResident(node, ti)
	}
	st.evictIfNeeded(node)
}

// evictIfNeeded drops least-recently-used unpinned tiles from a full node,
// writing back dirty copies (sole valid copy on this node) to the host over
// the node's PCI link. If everything resident is pinned, the node
// over-subscribes silently (the workload genuinely needs more memory).
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) evictIfNeeded(node int) {
	capTiles := st.capacity[node]
	if capTiles == 0 {
		return
	}
	for len(st.residentTiles[node]) > capTiles {
		victim, bestSeq := -1, int(^uint(0)>>1)
		base := node * st.nTiles
		for _, v := range st.residentTiles[node] {
			ti := int(v)
			if st.pins[base+ti] > 0 {
				continue
			}
			if s := st.lastUse[base+ti]; s < bestSeq {
				bestSeq, victim = s, ti
			}
		}
		if victim == -1 {
			return
		}
		lb := victim * st.nNodes
		wroteBack := false
		if st.locCount[victim] == 1 && st.loc[lb+node] {
			if st.p.Bus.Enabled {
				// Sole copy: write back to the host before dropping.
				hop := st.tileHop[victim]
				start := math.Max(st.now, st.linkFree[node])
				st.linkFree[node] = start + hop
				st.res.TransferSec += hop
				st.res.TransferCount++
				st.res.Writebacks++
				wroteBack = true
				if st.rec != nil {
					st.rec.Transfers = append(st.rec.Transfers, obs.Transfer{
						StartSec: start, EndSec: start + hop, Tile: int32(victim),
						From: int32(node), To: 0, Writeback: true})
				}
			}
			st.loc[lb] = true // the host holds the surviving copy
			st.locCount[victim]++
		}
		if st.loc[lb+node] {
			st.loc[lb+node] = false
			st.locCount[victim]--
		}
		st.removeResident(node, victim)
		st.res.Evictions++
		if st.rec != nil {
			st.rec.Evictions = append(st.rec.Evictions, obs.Eviction{
				TimeSec: st.now, Node: int32(node), Tile: int32(victim), Writeback: wroteBack})
		}
	}
}

// recordDecision captures the scheduling decision for t: the chosen worker
// plus every candidate's estimated-completion-time terms, computed from the
// same pre-prefetch state the scheduler's Assign just observed. Read-only —
// the schedule is bit-identical with recording on or off.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) recordDecision(t *graph.Task, chosen int) {
	rec := st.rec
	if rec == nil {
		return
	}
	rec.Readies = append(rec.Readies, obs.Ready{TimeSec: st.now, Task: int32(t.ID)})
	useComm := true // unknown policies: record the full dmda-level estimate
	if st.costm != nil {
		useComm = st.costm.UsesTransfer()
	}
	var allowedCls []int
	if st.restr != nil {
		allowedCls = st.restr.AllowedClasses(t)
	}
	off := int32(len(rec.Candidates))
	for w := 0; w < st.p.Workers(); w++ {
		class := st.p.WorkerClass(w)
		c := obs.Candidate{Worker: int32(w), Class: int32(class), Chosen: w == chosen}
		if exec := st.ExecTime(w, t); math.IsInf(exec, 1) {
			c.Infeasible = true
		} else {
			c.ExecSec = exec
			c.TransferSec = st.TransferEstimate(w, t)
			c.QueueWaitSec = math.Max(st.estFree[w], st.now) - st.now
			c.ECTSec = st.now + c.QueueWaitSec + exec
			if useComm {
				c.ECTSec += c.TransferSec
			}
		}
		if allowedCls != nil && !containsInt(allowedCls, class) {
			c.HintExcluded = true
		}
		rec.Candidates = append(rec.Candidates, c)
	}
	rec.Decisions = append(rec.Decisions, obs.Decision{
		TimeSec: st.now, Task: int32(t.ID), Kind: t.Kind, Worker: int32(chosen),
		CandOff: off, CandLen: int32(len(rec.Candidates)) - off,
	})
}

// assign routes a freshly ready task through the scheduler to a worker queue
// and prefetches its missing tiles to that worker's memory node.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) assign(t *graph.Task) {
	w := st.s.Assign(st, t)
	if w < 0 || w >= st.p.Workers() {
		panic(fmt.Sprintf("simulator: scheduler assigned task %s to invalid worker %d", t.Name(), w)) //chollint:alloc abort path
	}
	if st.rec != nil {
		st.recordDecision(t, w)
	}
	if st.decTrace != nil {
		st.decTrace[st.decisions] = int32(t.ID)
	}
	st.decisions++
	st.pinFootprint(t, st.p.MemoryNode(w), 1)
	ready := st.prefetch(t, w)
	st.dataReady[t.ID] = ready
	exec := st.ExecTime(w, t)
	st.estFree[w] = math.Max(math.Max(st.estFree[w], st.now), ready) + exec

	e := queueEntry{task: t, prio: st.s.Priority(t), seq: st.seq}
	st.seq++
	q := &st.queues[w]
	if st.ordered {
		// Insert keeping descending priority, stable on seq.
		pos := sort.Search(q.size(), func(i int) bool { return q.at(i).prio < e.prio })
		q.insert(pos, e)
	} else {
		q.pushBack(e)
	}
	st.workerDirty[w] = true
}

// prefetch schedules the PCI hops bringing t's tiles to worker w's node and
// returns the time at which all data is available there.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) prefetch(t *graph.Task, w int) float64 {
	node := st.p.MemoryNode(w)
	ready := st.now
	for _, tv := range st.footprint(t) {
		ti := int(tv)
		base := ti * st.nNodes
		if st.loc[base+node] {
			if node != 0 { // refresh LRU position
				st.lastUse[node*st.nTiles+ti] = st.seq
				st.seq++
			}
			continue
		}
		if !st.p.Bus.Enabled {
			st.loc[base+node] = true
			st.locCount[ti]++
			st.addCopy(node, ti)
			continue
		}
		hop := st.tileHop[ti]
		var avail float64
		if node == 0 {
			// Device → host over the source device's link.
			src := st.sourceNode(ti)
			start := math.Max(st.now, st.linkFree[src])
			avail = start + hop
			st.linkFree[src] = avail
			st.res.TransferSec += hop
			st.res.TransferCount++
			if st.rec != nil {
				st.rec.Transfers = append(st.rec.Transfers, obs.Transfer{
					StartSec: start, EndSec: avail, Tile: int32(ti), From: int32(src), To: 0})
			}
		} else if st.loc[base] {
			// Host → device over the target device's link.
			start := math.Max(st.now, st.linkFree[node])
			avail = start + hop
			st.linkFree[node] = avail
			st.res.TransferSec += hop
			st.res.TransferCount++
			if st.rec != nil {
				st.rec.Transfers = append(st.rec.Transfers, obs.Transfer{
					StartSec: start, EndSec: avail, Tile: int32(ti), From: 0, To: int32(node)})
			}
		} else {
			// Device → host → device: two hops on two links.
			src := st.sourceNode(ti)
			s1 := math.Max(st.now, st.linkFree[src])
			e1 := s1 + hop
			st.linkFree[src] = e1
			s2 := math.Max(e1, st.linkFree[node])
			avail = s2 + hop
			st.linkFree[node] = avail
			st.res.TransferSec += 2 * hop
			st.res.TransferCount += 2
			st.loc[base] = true // the host keeps the staged copy
			st.locCount[ti]++
			if st.rec != nil {
				st.rec.Transfers = append(st.rec.Transfers,
					obs.Transfer{StartSec: s1, EndSec: e1, Tile: int32(ti), From: int32(src), To: 0},
					obs.Transfer{StartSec: s2, EndSec: avail, Tile: int32(ti), From: 0, To: int32(node)})
			}
		}
		st.loc[base+node] = true
		st.locCount[ti]++
		st.addCopy(node, ti)
		if avail > ready {
			ready = avail
		}
	}
	return ready
}

// completed is the completion oracle handed to sched.Gater implementations.
func (st *state) completed(id int) bool { return st.doneTask[id] }

// sourceNode picks the transfer source deterministically: the host if it has
// a valid copy, else the lowest-numbered holding node.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) sourceNode(ti int) int {
	base := ti * st.nNodes
	for node := 0; node < st.nNodes; node++ {
		if st.loc[base+node] {
			return node
		}
	}
	return 0
}

// trySteal moves a queued task from the most-loaded victim to idle worker w.
// Returns true if a task was migrated (and its data re-prefetched).
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) trySteal(w int) bool {
	class := st.p.WorkerClass(w)
	// Victim: the worker with the longest queue holding a stealable task.
	bestV, bestIdx, bestLen := -1, -1, 0
	for v := range st.queues {
		if v == w || st.queues[v].size() <= bestLen {
			continue
		}
		// Steal from the back: the entry the victim would run last.
		for idx := st.queues[v].size() - 1; idx >= 0; idx-- {
			t := st.queues[v].at(idx).task
			if math.IsInf(st.ExecTime(w, t), 1) {
				continue
			}
			if st.restr != nil {
				if cls := st.restr.AllowedClasses(t); cls != nil && !containsInt(cls, class) {
					continue
				}
			}
			bestV, bestIdx, bestLen = v, idx, st.queues[v].size()
			break
		}
	}
	if bestV == -1 {
		return false
	}
	e := st.queues[bestV].remove(bestIdx)
	// Move pins and re-prefetch for the thief's memory node.
	st.pinFootprint(e.task, st.p.MemoryNode(bestV), -1)
	st.pinFootprint(e.task, st.p.MemoryNode(w), 1)
	st.dataReady[e.task.ID] = st.prefetch(e.task, w)
	exec := st.ExecTime(w, e.task)
	st.estFree[w] = math.Max(math.Max(st.estFree[w], st.now), st.dataReady[e.task.ID]) + exec
	st.queues[w].pushBack(e)
	return true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// tryStartAll starts the head-of-queue task on every idle worker. On the
// common path (no gating, no stealing) only workers whose queues or
// execution state changed since the last scan are visited: for every other
// worker the post-scan invariant "executing, or empty queue" still holds,
// so rescanning it cannot start anything. Gating breaks the invariant (a
// completion elsewhere can unblock a held queue head) and stealing needs a
// global view, so both fall back to the full scan.
//
//chol:hotpath per-event kernel; allocs/op pinned by cmd/cholbench sim/*
func (st *state) tryStartAll(events *eventHeap) {
	scanAll := st.gater != nil || st.opt.WorkStealing
	if st.opt.WorkStealing && st.gater == nil {
		for w := range st.queues {
			if !st.executing[w] && st.queues[w].size() == 0 {
				st.trySteal(w)
			}
		}
	}
	for w := range st.queues {
		if !scanAll {
			if !st.workerDirty[w] {
				continue
			}
			st.workerDirty[w] = false
		}
		for !st.executing[w] && st.queues[w].size() > 0 {
			e := st.queues[w].at(0)
			if st.gater != nil && !st.gater.MayStart(e.task, st.completed) {
				break // hold the worker for the planned-order predecessor
			}
			t := st.queues[w].popFront().task
			if st.startTrace != nil {
				st.startTrace[st.started] = int32(t.ID)
			}
			st.started++
			avail := math.Max(st.now, st.workerFree[w])
			start := math.Max(avail, st.dataReady[t.ID])
			st.res.StallSec += start - avail
			if st.rec != nil && start > st.workerFree[w] {
				// The interval since the worker's previous completion (or
				// the run start) was idle; its tail beyond avail was a data
				// stall.
				st.rec.Idles = append(st.rec.Idles, obs.Idle{
					Worker: int32(w), FromSec: st.workerFree[w], ToSec: start,
					StallSec: start - avail})
			}
			exec := st.ExecTime(w, t)
			if st.opt.Overhead {
				exec = st.jittered(exec, t.ID) + st.p.Overhead.PerTaskSec
			}
			end := start + exec
			st.res.Start[t.ID] = start
			st.res.End[t.ID] = end
			st.res.Worker[t.ID] = w
			st.res.BusySec[w] += end - start
			st.executing[w] = true
			st.workerFree[w] = end
			if st.estFree[w] < end {
				st.estFree[w] = end
			}
			events.push(event{time: end, seq: st.seq, worker: w, task: t})
			st.seq++
			break // worker now busy; inner loop exits via executing[w]
		}
	}
}

// jittered perturbs an execution time deterministically per (seed, task).
// Lanes prime jitU with the identical draws up front (see jitter.go), so the
// batched advance never seeds a generator; the serial path keeps the
// original per-task generator and the two are bit-identical by the fast-path
// equality tests.
func (st *state) jittered(exec float64, taskID int) float64 {
	f := st.p.Overhead.JitterFrac
	if f == 0 {
		return exec
	}
	var u float64
	if st.jitU != nil {
		u = st.jitU[taskID]
	} else {
		rng := rand.New(rand.NewSource(st.opt.Seed*1000003 + int64(taskID)))
		u = 2*rng.Float64() - 1
	}
	return exec * (1 + f*u)
}

// Validate checks that a result is a legal schedule for the DAG: every task
// ran exactly once on a worker able to execute it, per-worker intervals do
// not overlap, and no task started before all its predecessors finished.
// (Data-transfer delays only push starts later, so the dependency check is
// a necessary condition regardless of the bus model.)
func Validate(d *graph.DAG, p *platform.Platform, r *Result) error {
	n := len(d.Tasks)
	if len(r.Start) != n || len(r.End) != n || len(r.Worker) != n {
		return fmt.Errorf("simulator: result arrays have wrong length")
	}
	// Indexed by worker (not a map): with several invalid workers the
	// *first* reported overlap must not depend on map iteration order.
	perWorker := make([][][2]float64, p.Workers())
	for _, t := range d.Tasks {
		id := t.ID
		w := r.Worker[id]
		if w < 0 || w >= p.Workers() {
			return fmt.Errorf("simulator: task %s on invalid worker %d", t.Name(), w)
		}
		if math.IsInf(p.TimeNB(p.WorkerClass(w), t.Kind, t.NB), 1) {
			return fmt.Errorf("simulator: task %s ran on incapable worker %d", t.Name(), w)
		}
		if r.End[id] < r.Start[id] {
			return fmt.Errorf("simulator: task %s ends before it starts", t.Name())
		}
		for _, pr := range t.Pred {
			if r.Start[id] < r.End[pr]-1e-9 {
				return fmt.Errorf("simulator: task %s started %.9f before predecessor %s finished %.9f",
					t.Name(), r.Start[id], d.Tasks[pr].Name(), r.End[pr])
			}
		}
		perWorker[w] = append(perWorker[w], [2]float64{r.Start[id], r.End[id]})
	}
	for w, ivs := range perWorker {
		if len(ivs) == 0 {
			continue
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		for i := 1; i < len(ivs); i++ {
			if ivs[i][0] < ivs[i-1][1]-1e-9 {
				return fmt.Errorf("simulator: overlapping intervals on worker %d", w)
			}
		}
	}
	return nil
}
