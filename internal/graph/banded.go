package graph

// BandedCholesky builds the task graph of the tiled Cholesky factorization
// of a *block-banded* SPD matrix: tiles (i, j) with i − j > bw are zero and
// stay zero (a banded matrix has no fill outside its band), so their tasks
// are skipped entirely. This is a first step toward the paper's announced
// "more irregular applications such as sparse linear algebra": the DAG is
// narrower, parallelism is bounded by the bandwidth, and the gap to the
// area/mixed bounds behaves very differently from the dense case.
//
// bw = p−1 degenerates to the dense Cholesky DAG.
func BandedCholesky(p, bw int) *DAG {
	if bw < 0 {
		bw = 0
	}
	b := newBuilder("cholesky", p)
	b.dag.Algorithm = "cholesky" // the diagonal-chain bound applies unchanged
	for k := 0; k < p; k++ {
		b.task(POTRF, -1, -1, k, TileRef{k, k, ReadWrite})
		for i := k + 1; i < p && i-k <= bw; i++ {
			b.task(TRSM, i, -1, k,
				TileRef{k, k, Read},
				TileRef{i, k, ReadWrite})
		}
		for j := k + 1; j < p && j-k <= bw; j++ {
			b.task(SYRK, -1, j, k,
				TileRef{j, k, Read},
				TileRef{j, j, ReadWrite})
			for i := j + 1; i < p && i-k <= bw; i++ {
				b.task(GEMM, i, j, k,
					TileRef{i, k, Read},
					TileRef{j, k, Read},
					TileRef{i, j, ReadWrite})
			}
		}
	}
	return b.finish()
}
