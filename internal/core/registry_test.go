package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Tests that register entries use the zz-test- prefix by convention; the
// golden tests below filter it out so registration tests and golden tests
// compose in one process.
func builtins[E interface{ Display() string }](entries []E) []string {
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Display(), "zz-test-") {
			continue
		}
		out = append(out, e.Display())
	}
	return out
}

// TestPlatformsGolden pins the built-in platform catalogue: the same list
// backs cholsim -list, the /v1/platforms endpoint, and every "unknown
// platform" error, so a drift here is user-visible in three places.
func TestPlatformsGolden(t *testing.T) {
	want := []string{"homogeneous:N", "mirage", "mirage-extended", "mirage-nocomm", "related:K"}
	got := builtins(Platforms())
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Platforms() = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Platforms() not sorted: %v", got)
	}
	for _, e := range Platforms() {
		if e.Description == "" {
			t.Errorf("platform %q has no description", e.Display())
		}
	}
}

func TestSchedulersGolden(t *testing.T) {
	want := []string{"dmda", "dmda-nocomm", "dmdar", "dmdas", "gemm-syrk-gpu", "greedy", "partition:G", "random", "trsm-cpu:K"}
	got := builtins(Schedulers())
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Schedulers() = %v, want %v", got, want)
	}
	for _, e := range Schedulers() {
		if e.Description == "" {
			t.Errorf("scheduler %q has no description", e.Display())
		}
	}
}

// TestUsageMatchesCatalogue asserts the CLI help strings are generated from
// the registry rather than hand-maintained.
func TestUsageMatchesCatalogue(t *testing.T) {
	for _, e := range Platforms() {
		if !strings.Contains(PlatformUsage(), e.Display()) {
			t.Errorf("PlatformUsage() %q missing %q", PlatformUsage(), e.Display())
		}
	}
	for _, e := range Schedulers() {
		if !strings.Contains(SchedulerUsage(), e.Display()) {
			t.Errorf("SchedulerUsage() %q missing %q", SchedulerUsage(), e.Display())
		}
	}
}

// TestUnknownErrorsListRegistry asserts satellite #3: "unknown" errors name
// every registered entry so the registry is the single source of truth.
func TestUnknownErrorsListRegistry(t *testing.T) {
	if _, err := NewPlatform("no-such-platform"); err == nil || !strings.Contains(err.Error(), PlatformUsage()) {
		t.Fatalf("NewPlatform error %v does not list the registry", err)
	}
	if _, err := NewScheduler("no-such-sched"); err == nil || !strings.Contains(err.Error(), SchedulerUsage()) {
		t.Fatalf("NewScheduler error %v does not list the registry", err)
	}
}

func TestParameterizedNames(t *testing.T) {
	p, err := NewPlatform("homogeneous:5")
	if err != nil {
		t.Fatal(err)
	}
	if w := p.Workers(); w != 5 {
		t.Fatalf("homogeneous:5 built %d workers", w)
	}
	if _, err := NewPlatform("homogeneous"); err == nil {
		t.Fatal("homogeneous without worker count should fail")
	}
	if _, err := NewPlatform("mirage:3"); err == nil || !strings.Contains(err.Error(), "takes no parameter") {
		t.Fatalf("mirage:3 error = %v, want 'takes no parameter'", err)
	}
	if _, err := NewScheduler("trsm-cpu:4"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler("trsm-cpu"); err == nil {
		t.Fatal("trsm-cpu without K should fail")
	}
}

func TestRegisterCustom(t *testing.T) {
	RegisterPlatform(PlatformEntry{
		Name:        "zz-test-flat",
		Param:       "N",
		Description: "test-only homogeneous clone",
		Build: func(arg string) (*platform.Platform, error) {
			return platform.Homogeneous(3), nil
		},
	})
	RegisterScheduler(SchedulerEntry{
		Name:        "zz-test-greedy",
		Description: "test-only greedy clone",
		Build: func(arg string) (sched.Scheduler, error) {
			return sched.NewGreedy(), nil
		},
	})
	if _, err := NewPlatform("zz-test-flat:9"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler("zz-test-greedy"); err != nil {
		t.Fatal(err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterPlatform did not panic")
		}
	}()
	RegisterPlatform(PlatformEntry{
		Name:  "zz-test-flat",
		Build: func(string) (*platform.Platform, error) { return platform.Homogeneous(1), nil },
	})
}

func TestRegisteredBuildersConstruct(t *testing.T) {
	names := []string{"mirage", "mirage-nocomm", "homogeneous:4", "related:2"}
	for _, n := range names {
		p, err := NewPlatform(n)
		if err != nil {
			t.Fatalf("NewPlatform(%q): %v", n, err)
		}
		if err := p.Validate(graph.CholeskyKinds); err != nil {
			t.Fatalf("platform %q invalid: %v", n, err)
		}
	}
	for _, n := range []string{"random", "greedy", "dmda", "dmdas", "dmdar", "dmda-nocomm", "gemm-syrk-gpu", "trsm-cpu:3"} {
		if _, err := NewScheduler(n); err != nil {
			t.Fatalf("NewScheduler(%q): %v", n, err)
		}
	}
}
