// Package cpsolve is the reproduction's stand-in for the paper's constraint-
// programming solver (CP Optimizer v12.4, Section III-B): a depth-first
// branch-and-bound search over (ready task × resource class) scheduling
// decisions with critical-path-based pruning and a warm start.
//
// The model matches the paper's CP formulation: each task runs on one
// resource of one class, taking that class's kernel time; at most M_r tasks
// of class r run concurrently; dependencies are respected; data transfers
// are not modelled ("it would otherwise be extremely costly to solve").
//
// Like the paper's solver — which ran for 23 hours without proving
// optimality — this search is budgeted (by node count, for determinism) and
// returns the best *feasible* schedule found plus whether the search space
// (of active schedules) was exhausted.
//
// The search is a deterministic parallel branch-and-bound (see parallel.go):
// a sequential split phase partitions the tree into disjoint subtrees, which
// a bounded worker pool explores speculatively against a snapshot of the
// shared incumbent; an in-order commit step validates each speculation and
// deterministically re-runs the rare stale ones, so the returned Result —
// schedule, makespan, Nodes, Exhausted — is bit-identical for every value of
// Options.Workers, including the serial path.
package cpsolve

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Options controls the search.
type Options struct {
	// NodeBudget caps the number of explored search nodes (deterministic
	// analogue of the paper's 23-hour wall-clock budget). Default 200000.
	NodeBudget int
	// Beam is how many of the highest-priority ready tasks are branched on
	// per node. Default 2. Larger = wider search, costlier.
	Beam int
	// WarmStart seeds the incumbent (the paper warm-starts with HEFT).
	// When nil, a HEFT schedule is computed automatically.
	WarmStart *sched.StaticSchedule
	// CommHopSec, when positive, makes the model *partially data-aware* —
	// the extension the paper describes as ongoing work ("we are currently
	// extending the CP formulation to partially take data transfers into
	// account"): every dependency crossing resource classes delays the
	// successor by one PCI-hop time. Zero keeps the paper's published
	// communication-oblivious CP model.
	CommHopSec float64
	// Workers is the number of goroutines exploring subtrees concurrently.
	// Values ≤ 1 run the same partitioned search on the calling goroutine.
	// The Result is bit-identical for every value of Workers.
	Workers int
	// Probe, when non-nil, receives live progress frames (nodes expanded
	// vs budget, incumbent trajectory, budget-cut subtree count) from the
	// sequential commit points of the search, so the frame stream is
	// bit-identical for every value of Workers. Nil costs one pointer
	// check. Same contract as simulator.Options.Probe.
	Probe *obs.Probe
}

// Result of a search.
type Result struct {
	Schedule *sched.StaticSchedule
	Makespan float64
	Nodes    int
	// Exhausted reports that the search space (of active schedules) was
	// fully explored: no subtree was cut short by the node budget or by
	// cancellation.
	Exhausted bool
}

// pruneEps is the slack under the incumbent a branch must beat to be
// explored: float noise from summing task times differs in the last ulps
// between equivalent schedules, and pruning on exact >= would make the
// search order sensitive to it.
const pruneEps = 1e-12

// prob holds the immutable, shareable description of one search: the DAG,
// the platform, and every table precomputed from them. Worker solvers all
// point at the same prob.
type prob struct {
	d   *graph.DAG
	p   *platform.Platform
	opt Options

	blFast []float64 // bottom levels under fastest times (pruning + order)
	tail   []float64 // blFast minus the task's own fastest time

	classes    []int       // usable platform class indices
	classExec  [][]float64 // per internal class, exec time per cost group (+Inf unsupported)
	classOrder [][]int     // per cost group, internal classes sorted by exec time

	// Cost groups are the distinct (kind, nb) pairs the cost model must
	// price: groups 0..NumKinds−1 are the nb = 0 base groups (uniform DAGs
	// index nothing else, keeping their tables bit-identical to the
	// per-kind layout), and each additional tile size present in the DAG
	// appends one group per occurring kind.
	taskGroup []int32
	groupKind []graph.Kind
	groupNB   []int
	workerOf  [][]int // per internal class, its workers
	workerCi  []int   // per worker, its internal class index
	nTasks    int

	baseIndeg []int
	roots     []int
}

// solver is one worker's mutable search state. Everything here is reset and
// replayed per subtree, so a solver can be reused across any number of runs.
type solver struct {
	pr  *prob
	ctx context.Context

	workerFree []float64
	finish     []float64
	worker     []int
	indeg      []int
	ready      []int

	bestWorker []int
	bestStart  []float64
	bestMk     float64
	improved   bool

	nodes     int // nodes visited in the current run
	budget    int // node cap for the current run
	cut       bool
	cancelled bool

	cands  [][]int     // per depth, top-Beam candidate scratch
	depsIn [][]float64 // per depth, per-class max predecessor finish (comm model)
}

// Solve searches for a low-makespan static schedule of d on p.
func Solve(d *graph.DAG, p *platform.Platform, opt Options) (*Result, error) {
	return SolveContext(context.Background(), d, p, opt)
}

// cancelCheckStride is how many explored nodes pass between context polls:
// node expansion is cheap, so checking every node would be measurable, while
// a few hundred nodes expand in well under a millisecond.
const cancelCheckStride = 256

// SolveContext is Solve with cancellation: the branch-and-bound unwinds —
// including every worker goroutine — and returns ctx's error (dropping any
// incumbent) once the context is done.
func SolveContext(ctx context.Context, d *graph.DAG, p *platform.Platform, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cpsolve: search cancelled: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(d.Kinds()); err != nil {
		return nil, err
	}
	if opt.NodeBudget <= 0 {
		opt.NodeBudget = 200000
	}
	if opt.Beam <= 0 {
		opt.Beam = 2
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	bl, err := d.BottomLevels(func(t *graph.Task) float64 {
		return p.FastestTimeNB(t.Kind, t.NB)
	})
	if err != nil {
		return nil, err
	}
	pr := newProb(d, p, opt, bl)

	// Warm start.
	warm := opt.WarmStart
	if warm == nil {
		warm, err = sched.HEFT(d, p)
		if err != nil {
			return nil, err
		}
	}
	if err := warm.Validate(d, p); err != nil {
		return nil, fmt.Errorf("cpsolve: warm start invalid: %w", err)
	}
	ws, wm, err := replayComm(d, p, warm, opt.CommHopSec)
	if err != nil {
		return nil, err
	}
	g := newIncumbent(pr)
	g.mk = wm
	copy(g.worker, warm.Worker)
	copy(g.start, ws)
	g.publishMin(wm)

	return solveParallel(ctx, pr, g)
}

// buildGroups assigns every task its (kind, nb) cost group. The first
// NumKinds groups are the nb = 0 base groups; further tile sizes present in
// the DAG append one group per occurring kind, in (nb, kind) order.
func (pr *prob) buildGroups() {
	pr.groupKind = make([]graph.Kind, graph.NumKinds)
	pr.groupNB = make([]int, graph.NumKinds)
	for k := graph.Kind(0); k < graph.NumKinds; k++ {
		pr.groupKind[k] = k
	}
	pr.taskGroup = make([]int32, len(pr.d.Tasks))
	nbs := pr.d.NBs()
	if len(nbs) == 1 && nbs[0] == 0 {
		for _, t := range pr.d.Tasks {
			pr.taskGroup[t.ID] = int32(t.Kind)
		}
		return
	}
	groupOf := make(map[[2]int]int, 2*graph.NumKinds)
	present := make(map[[2]int]bool, 2*graph.NumKinds)
	for _, t := range pr.d.Tasks {
		if t.NB != 0 {
			present[[2]int{t.NB, int(t.Kind)}] = true
		}
	}
	for _, nb := range nbs {
		if nb == 0 {
			continue
		}
		for k := graph.Kind(0); k < graph.NumKinds; k++ {
			if !present[[2]int{nb, int(k)}] {
				continue
			}
			groupOf[[2]int{nb, int(k)}] = len(pr.groupKind)
			pr.groupKind = append(pr.groupKind, k)
			pr.groupNB = append(pr.groupNB, nb)
		}
	}
	for _, t := range pr.d.Tasks {
		if t.NB == 0 {
			pr.taskGroup[t.ID] = int32(t.Kind)
		} else {
			pr.taskGroup[t.ID] = int32(groupOf[[2]int{t.NB, int(t.Kind)}])
		}
	}
}

func newProb(d *graph.DAG, p *platform.Platform, opt Options, bl []float64) *prob {
	pr := &prob{d: d, p: p, opt: opt, blFast: bl, nTasks: len(d.Tasks)}
	pr.buildGroups()
	classIdxOf := make([]int, len(p.Classes))
	for i := range classIdxOf {
		classIdxOf[i] = -1
	}
	for r := range p.Classes {
		if p.Classes[r].Count == 0 {
			continue
		}
		classIdxOf[r] = len(pr.classes)
		pr.classes = append(pr.classes, r)
		exec := make([]float64, len(pr.groupKind))
		for g := range exec {
			exec[g] = p.TimeNB(r, pr.groupKind[g], pr.groupNB[g])
		}
		pr.classExec = append(pr.classExec, exec)
		pr.workerOf = append(pr.workerOf, p.ClassWorkers(r))
	}
	pr.workerCi = make([]int, p.Workers())
	for w := range pr.workerCi {
		pr.workerCi[w] = classIdxOf[p.WorkerClass(w)]
	}
	pr.classOrder = make([][]int, len(pr.groupKind))
	for g := range pr.classOrder {
		order := make([]int, len(pr.classes))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ea, eb := pr.classExec[order[a]][g], pr.classExec[order[b]][g]
			// Tie-break on the class index so the branch order is a total
			// order (sort.Slice is unstable).
			if ea != eb { //chollint:floateq
				return ea < eb
			}
			return order[a] < order[b]
		})
		pr.classOrder[g] = order
	}
	pr.tail = make([]float64, pr.nTasks)
	pr.baseIndeg = make([]int, pr.nTasks)
	for _, t := range d.Tasks {
		pr.tail[t.ID] = bl[t.ID] - p.FastestTimeNB(t.Kind, t.NB)
		pr.baseIndeg[t.ID] = len(t.Pred)
		if len(t.Pred) == 0 {
			pr.roots = append(pr.roots, t.ID)
		}
	}
	return pr
}

// newSolver allocates one worker's search state, including the per-depth
// scratch that keeps node expansion allocation-free.
func newSolver(pr *prob, ctx context.Context) *solver {
	s := &solver{
		pr:         pr,
		ctx:        ctx,
		workerFree: make([]float64, pr.p.Workers()),
		finish:     make([]float64, pr.nTasks),
		worker:     make([]int, pr.nTasks),
		indeg:      make([]int, pr.nTasks),
		ready:      make([]int, 0, pr.nTasks),
		bestWorker: make([]int, pr.nTasks),
		bestStart:  make([]float64, pr.nTasks),
		bestMk:     math.Inf(1),
		cands:      make([][]int, pr.nTasks+1),
	}
	for i := range s.cands {
		// Beam+1 so the insertion step can append before truncating.
		s.cands[i] = make([]int, 0, pr.opt.Beam+1)
	}
	if pr.opt.CommHopSec > 0 {
		s.depsIn = make([][]float64, pr.nTasks+1)
		for i := range s.depsIn {
			s.depsIn[i] = make([]float64, len(pr.classes))
		}
	}
	return s
}

// reset returns the solver to the empty schedule.
func (s *solver) reset() {
	for i := range s.finish {
		s.finish[i] = -1
		s.worker[i] = -1
	}
	copy(s.indeg, s.pr.baseIndeg)
	s.ready = s.ready[:0]
	s.ready = append(s.ready, s.pr.roots...)
	for i := range s.workerFree {
		s.workerFree[i] = 0
	}
}

// replayPath re-commits a subtree's decision path onto a freshly reset
// solver and returns the latest committed finish time. Paths are produced by
// the split phase from the same branch rule dfs uses, so no pruning or
// feasibility checks are re-applied.
func (s *solver) replayPath(path []step) float64 {
	maxFinish := 0.0
	for _, st := range path {
		id, ci := int(st.task), int(st.class)
		t := s.pr.d.Tasks[id]
		exec := s.pr.classExec[ci][s.pr.taskGroup[id]]
		df := s.depsFinishOn(id, ci)
		w, wf := s.earliestFree(ci)
		start := wf
		if df > start {
			start = df
		}
		end := start + exec
		s.worker[id] = w
		s.finish[id] = end
		s.workerFree[w] = end
		s.removeReady(id)
		for _, succ := range t.Succ {
			s.indeg[succ]--
			if s.indeg[succ] == 0 {
				s.ready = append(s.ready, succ)
			}
		}
		if end > maxFinish {
			maxFinish = end
		}
	}
	return maxFinish
}

// earliestFree returns the earliest-free worker of internal class ci
// (workers of a class are identical, so the earliest one is canonical).
//
//chol:hotpath
func (s *solver) earliestFree(ci int) (int, float64) {
	w, wf := -1, math.Inf(1)
	for _, cw := range s.pr.workerOf[ci] {
		if s.workerFree[cw] < wf {
			wf, w = s.workerFree[cw], cw
		}
	}
	return w, wf
}

// dfs explores scheduling decisions below the current state; depth is the
// number of committed tasks and maxFinish the latest committed end. The
// current run's node budget and incumbent are in the solver fields.
//
//chol:hotpath
func (s *solver) dfs(depth int, maxFinish float64) {
	if s.nodes >= s.budget {
		s.cut = true
		return
	}
	s.nodes++
	if s.nodes%cancelCheckStride == 0 && s.ctx.Err() != nil {
		s.cancelled = true
		return
	}
	if len(s.ready) == 0 {
		// All tasks scheduled (readiness propagation guarantees progress on
		// DAGs): record incumbent.
		if maxFinish < s.bestMk {
			s.bestMk = maxFinish
			s.improved = true
			copy(s.bestWorker, s.worker)
			for id := range s.pr.d.Tasks {
				ci := s.pr.workerCi[s.worker[id]]
				s.bestStart[id] = s.finish[id] - s.pr.classExec[ci][s.pr.taskGroup[id]]
			}
		}
		return
	}

	// Lower bound: each ready task's earliest start + its critical path.
	lb := maxFinish
	for _, id := range s.ready {
		est := s.depsFinish(id)
		if est+s.pr.blFast[id] > lb {
			lb = est + s.pr.blFast[id]
		}
	}
	if lb >= s.bestMk-pruneEps {
		return
	}

	cands := s.selectCands(depth)
	hop := s.pr.opt.CommHopSec
	for _, id := range cands {
		t := s.pr.d.Tasks[id]
		df0 := 0.0
		if hop > 0 {
			s.depsPrep(depth, id)
		} else {
			df0 = s.depsFinish(id)
		}
		for _, ci := range s.pr.classOrder[s.pr.taskGroup[id]] {
			exec := s.pr.classExec[ci][s.pr.taskGroup[id]]
			if math.IsInf(exec, 1) {
				break // classOrder sorts unsupported classes last
			}
			df := df0
			if hop > 0 {
				df = s.depsOn(depth, ci)
			}
			w, wf := s.earliestFree(ci)
			start := wf
			if df > start {
				start = df
			}
			end := start + exec
			if end+s.tailAfter(id) >= s.bestMk-pruneEps {
				continue // this placement cannot beat the incumbent
			}

			// Commit.
			s.worker[id] = w
			s.finish[id] = end
			prevFree := s.workerFree[w]
			s.workerFree[w] = end
			s.removeReady(id)
			for _, succ := range t.Succ {
				s.indeg[succ]--
				if s.indeg[succ] == 0 {
					s.ready = append(s.ready, succ)
				}
			}

			mf := maxFinish
			if end > mf {
				mf = end
			}
			s.dfs(depth+1, mf)

			// Undo. A successor whose indeg is still 0 was woken by this
			// commit and leaves the ready set again.
			for _, succ := range t.Succ {
				if s.indeg[succ] == 0 {
					s.removeReady(succ)
				}
				s.indeg[succ]++
			}
			s.ready = append(s.ready, id)
			s.workerFree[w] = prevFree
			s.finish[id] = -1
			s.worker[id] = -1

			if s.cancelled || s.cut {
				return
			}
		}
	}
}

// selectCands writes the top-Beam ready tasks by (bottom level desc, then
// ID) into the depth's reusable candidate buffer — an insertion sort over a
// bounded prefix, replacing the per-node slice copy + sort.Slice closure the
// serial solver used.
//
//chol:hotpath
func (s *solver) selectCands(depth int) []int {
	beam := s.pr.opt.Beam
	out := s.cands[depth][:0]
	for _, id := range s.ready {
		if len(out) == beam && !s.candBefore(id, out[beam-1]) {
			continue
		}
		out = append(out, id)
		for j := len(out) - 1; j > 0 && s.candBefore(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
		if len(out) > beam {
			out = out[:beam]
		}
	}
	return out
}

// candBefore is the branch-priority total order: higher bottom level first,
// ties broken by task ID.
//
//chol:hotpath
func (s *solver) candBefore(a, b int) bool {
	// Tie-break on the exact stored bottom levels, then task ID.
	if s.pr.blFast[a] != s.pr.blFast[b] { //chollint:floateq
		return s.pr.blFast[a] > s.pr.blFast[b]
	}
	return a < b
}

// tailAfter returns the critical path length strictly below task id (its
// bottom level minus its own fastest time), precomputed at setup.
//
//chol:hotpath
func (s *solver) tailAfter(id int) float64 {
	return s.pr.tail[id]
}

//chol:hotpath
func (s *solver) depsFinish(id int) float64 {
	m := 0.0
	for _, pr := range s.pr.d.Tasks[id].Pred {
		if s.finish[pr] > m {
			m = s.finish[pr]
		}
	}
	return m
}

// depsPrep memoizes, for one candidate at one depth, the maximum predecessor
// finish per resource class. depsOn then answers the per-class earliest
// start in O(classes) instead of re-walking the predecessor list per class.
// The memo is valid for the whole class loop because committed finishes are
// immutable while the candidate's placements are enumerated.
//
//chol:hotpath
func (s *solver) depsPrep(depth, id int) {
	row := s.depsIn[depth]
	for c := range row {
		row[c] = 0
	}
	for _, pr := range s.pr.d.Tasks[id].Pred {
		ci := s.pr.workerCi[s.worker[pr]]
		if s.finish[pr] > row[ci] {
			row[ci] = s.finish[pr]
		}
	}
}

// depsOn is the memoized depsFinishOn: the earliest dependency-ready time on
// internal class ci, charging one PCI hop to class-crossing dependencies.
// Finishes are strictly positive, so zero rows mean "no predecessor there".
//
//chol:hotpath
func (s *solver) depsOn(depth, ci int) float64 {
	hop := s.pr.opt.CommHopSec
	row := s.depsIn[depth]
	m := row[ci]
	for c, f := range row {
		if c != ci && f > 0 && f+hop > m {
			m = f + hop
		}
	}
	return m
}

// depsFinishOn is the unmemoized per-class earliest start, used off the hot
// path (path replay and the split phase).
func (s *solver) depsFinishOn(id, ci int) float64 {
	if s.pr.opt.CommHopSec == 0 {
		return s.depsFinish(id)
	}
	m := 0.0
	for _, pr := range s.pr.d.Tasks[id].Pred {
		f := s.finish[pr]
		if s.pr.workerCi[s.worker[pr]] != ci {
			f += s.pr.opt.CommHopSec
		}
		if f > m {
			m = f
		}
	}
	return m
}

//chol:hotpath
func (s *solver) removeReady(id int) {
	for i, v := range s.ready {
		if v == id {
			s.ready[i] = s.ready[len(s.ready)-1]
			s.ready = s.ready[:len(s.ready)-1]
			return
		}
	}
}

// replay evaluates a static schedule in the published CP model (no
// communication).
func replay(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule) ([]float64, float64, error) {
	return replayComm(d, p, plan, 0)
}

// replayComm evaluates a static schedule in the CP model: each worker runs
// its tasks in planned-start order, starts gated by dependencies, with an
// optional one-hop delay on class-crossing dependencies (the data-aware
// extension). Returns actual starts and the makespan.
func replayComm(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule, hop float64) ([]float64, float64, error) {
	type wq struct{ ids []int }
	queues := make([]wq, p.Workers())
	for id, w := range plan.Worker {
		queues[w].ids = append(queues[w].ids, id)
	}
	for w := range queues {
		ids := queues[w].ids
		sort.SliceStable(ids, func(a, b int) bool {
			// Tie-break on the exact stored plan times, then task ID.
			if plan.Start[ids[a]] != plan.Start[ids[b]] { //chollint:floateq
				return plan.Start[ids[a]] < plan.Start[ids[b]]
			}
			return ids[a] < ids[b]
		})
	}
	start := make([]float64, len(d.Tasks))
	finish := make([]float64, len(d.Tasks))
	done := make([]bool, len(d.Tasks))
	pos := make([]int, p.Workers())
	free := make([]float64, p.Workers())
	remaining := len(d.Tasks)
	for remaining > 0 {
		progress := false
		for w := range queues {
			for pos[w] < len(queues[w].ids) {
				id := queues[w].ids[pos[w]]
				t := d.Tasks[id]
				ok := true
				dep := 0.0
				for _, pr := range t.Pred {
					if !done[pr] {
						ok = false
						break
					}
					f := finish[pr]
					if hop > 0 && p.WorkerClass(plan.Worker[pr]) != p.WorkerClass(w) {
						f += hop
					}
					if f > dep {
						dep = f
					}
				}
				if !ok {
					break
				}
				st := math.Max(free[w], dep)
				en := st + p.TimeNB(p.WorkerClass(w), t.Kind, t.NB)
				start[id], finish[id] = st, en
				done[id] = true
				free[w] = en
				pos[w]++
				remaining--
				progress = true
			}
		}
		if !progress {
			return nil, 0, fmt.Errorf("cpsolve: static schedule deadlocks (cyclic worker order)")
		}
	}
	mk := 0.0
	for _, f := range finish {
		if f > mk {
			mk = f
		}
	}
	return start, mk, nil
}

// Replay exposes the CP-model evaluation of a static schedule (used by
// experiments to report "theoretical performance value with CP solution").
func Replay(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule) (float64, error) {
	_, mk, err := replay(d, p, plan)
	return mk, err
}

// ReplayComm is Replay under the partial data-awareness model (one PCI hop
// per class-crossing dependency).
func ReplayComm(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule, hop float64) (float64, error) {
	_, mk, err := replayComm(d, p, plan, hop)
	return mk, err
}
