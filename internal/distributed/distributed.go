// Package distributed extends the study to distributed memory — the setting
// of the paper's Section II-B context: ScaLAPACK distributes tiles over a
// virtual p×q homogeneous grid in 2D block-cyclic fashion and schedules
// statically with an owner-computes rule, which "ensures a good load and
// memory usage balancing for homogeneous computing resources. However, for
// heterogeneous resources, this layout is no longer an option, and dynamic
// scheduling is a widespread practice."
//
// This package lets that claim be measured: a cluster of identical
// (possibly internally heterogeneous) nodes connected by a network, with
//
//   - static owner-computes scheduling under pluggable tile distributions
//     (1D row-cyclic, 2D block-cyclic — the ScaLAPACK layouts), and
//   - fully dynamic cluster-wide minimum-completion-time scheduling,
//
// simulated by a deterministic discrete-event engine: tiles live on node
// memories, inter-node transfers serialize on sender and receiver NICs, and
// intra-node placement is always dynamic (min ECT over the node's workers).
package distributed

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
)

// Distribution maps tiles to owning cluster nodes.
type Distribution interface {
	Name() string
	Owner(i, j int) int
}

// BlockCyclic is the ScaLAPACK 2D block-cyclic layout over a P×Q grid
// (P·Q = cluster nodes): tile (i, j) belongs to grid rank (i mod P, j mod Q).
type BlockCyclic struct{ P, Q int }

// Name identifies the layout.
func (b BlockCyclic) Name() string { return fmt.Sprintf("block-cyclic-%dx%d", b.P, b.Q) }

// Owner implements Distribution.
func (b BlockCyclic) Owner(i, j int) int {
	ii, jj := i%b.P, j%b.Q
	if ii < 0 {
		ii += b.P
	}
	if jj < 0 {
		jj += b.Q
	}
	return ii*b.Q + jj
}

// RowCyclic is the 1D layout: tile row i belongs to node i mod N.
type RowCyclic struct{ N int }

// Name identifies the layout.
func (r RowCyclic) Name() string { return fmt.Sprintf("row-cyclic-%d", r.N) }

// Owner implements Distribution.
func (r RowCyclic) Owner(i, j int) int { return ((i % r.N) + r.N) % r.N }

// Cluster is a set of identical nodes joined by a network.
type Cluster struct {
	// Node is the per-node machine model; only its worker classes are used
	// (each node's memory is one flat node-local space — the network, not
	// the intra-node PCI, is the bottleneck modelled here).
	Node *platform.Platform
	// Nodes is the cluster size.
	Nodes int
	// Net models each node's NIC: a transfer occupies both the sender's and
	// the receiver's NIC for latency + bytes/bandwidth.
	Net platform.Bus
	// TileBytes is the wire size of one tile.
	TileBytes float64
}

// Validate checks the cluster can run the kinds.
func (c *Cluster) Validate(kinds []graph.Kind) error {
	if c.Nodes <= 0 {
		return fmt.Errorf("distributed: cluster needs at least one node")
	}
	return c.Node.Validate(kinds)
}

// Workers returns the cluster-wide worker count.
func (c *Cluster) Workers() int { return c.Nodes * c.Node.Workers() }

// workerNode maps a global worker ID to its cluster node.
func (c *Cluster) workerNode(w int) int { return w / c.Node.Workers() }

// workerClass maps a global worker ID to its class in the node template.
func (c *Cluster) workerClass(w int) int { return c.Node.WorkerClass(w % c.Node.Workers()) }

// FlatPlatform aggregates the cluster into a single platform model (class
// counts multiplied by the node count) so the communication-oblivious
// bounds of internal/bounds apply unchanged.
func (c *Cluster) FlatPlatform() *platform.Platform {
	p := c.Node.Clone()
	p.Name = fmt.Sprintf("%s-x%d", c.Node.Name, c.Nodes)
	for i := range p.Classes {
		p.Classes[i].Count *= c.Nodes
	}
	p.Bus = platform.Bus{}
	return p
}

// Options selects the scheduling mode.
type Options struct {
	// Dist, when non-nil, turns on static owner-computes scheduling: each
	// task runs on the node owning its written tile (ScaLAPACK's rule),
	// with dynamic min-ECT placement among that node's workers. When nil,
	// placement is dynamic across the whole cluster.
	Dist Distribution
	// Priorities sorts per-worker queues by bottom level when true
	// (the dmdas-like refinement); FIFO otherwise.
	Priorities bool
}

// Result of a distributed simulation.
type Result struct {
	MakespanSec  float64
	Start, End   []float64
	Worker       []int // global worker IDs
	NetTransfers int
	NetSec       float64 // cumulative NIC occupation time
	NodeBusySec  []float64
}

type event struct {
	time   float64
	seq    int
	worker int
	task   *graph.Task
}

type evHeap []event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	// Tie-break on the exact stored times, then the sequence number.
	if h[i].time != h[j].time { //chollint:floateq
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *evHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type entry struct {
	task *graph.Task
	prio float64
	seq  int
}

type sim struct {
	d   *graph.DAG
	c   *Cluster
	opt Options

	now        float64
	queues     [][]entry
	executing  []bool
	workerFree []float64
	estFree    []float64
	dataReady  []float64
	locations  map[[2]int]map[int]bool // tile → cluster nodes holding it
	nicFree    []float64               // per node
	prio       []float64
	seq        int
	res        *Result
}

// Simulate runs the DAG on the cluster.
func Simulate(d *graph.DAG, c *Cluster, opt Options) (*Result, error) {
	if err := c.Validate(d.Kinds()); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Tasks)
	nW := c.Workers()
	s := &sim{
		d: d, c: c, opt: opt,
		queues:     make([][]entry, nW),
		executing:  make([]bool, nW),
		workerFree: make([]float64, nW),
		estFree:    make([]float64, nW),
		dataReady:  make([]float64, n),
		locations:  map[[2]int]map[int]bool{},
		nicFree:    make([]float64, c.Nodes),
		res: &Result{
			Start: make([]float64, n), End: make([]float64, n),
			Worker: make([]int, n), NodeBusySec: make([]float64, c.Nodes),
		},
	}
	for i := range s.res.Worker {
		s.res.Worker[i] = -1
	}
	// Initial placement: tiles start on their owner (or node 0 without a
	// distribution — the "matrix loaded on the head node" scenario).
	for _, t := range d.Tasks {
		for _, ref := range t.Footprint {
			key := [2]int{ref.I, ref.J}
			if s.locations[key] == nil {
				home := 0
				if opt.Dist != nil {
					home = opt.Dist.Owner(ref.I, ref.J) % c.Nodes
				}
				s.locations[key] = map[int]bool{home: true}
			}
		}
	}
	if opt.Priorities {
		bl, err := d.BottomLevels(func(t *graph.Task) float64 {
			return c.Node.FastestTime(t.Kind)
		})
		if err != nil {
			return nil, err
		}
		s.prio = bl
	}

	indeg := make([]int, n)
	for _, t := range d.Tasks {
		indeg[t.ID] = len(t.Pred)
	}
	var events evHeap
	heap.Init(&events)
	for _, t := range d.Tasks {
		if indeg[t.ID] == 0 {
			s.assign(t)
		}
	}
	s.startAll(&events)
	done := 0
	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		s.now = ev.time
		s.executing[ev.worker] = false
		s.workerFree[ev.worker] = s.now
		done++
		node := s.c.workerNode(ev.worker)
		for _, ref := range ev.task.Footprint {
			if ref.Mode == graph.ReadWrite {
				s.locations[[2]int{ref.I, ref.J}] = map[int]bool{node: true}
			}
		}
		for _, succ := range ev.task.Succ {
			indeg[succ]--
			if indeg[succ] == 0 {
				s.assign(s.d.Tasks[succ])
			}
		}
		s.startAll(&events)
	}
	if done != n {
		return nil, fmt.Errorf("distributed: deadlock — %d of %d tasks completed", done, n)
	}
	mk := 0.0
	for _, e := range s.res.End {
		if e > mk {
			mk = e
		}
	}
	s.res.MakespanSec = mk
	return s.res, nil
}

// writtenTile returns the RW tile of a task (owner-computes anchor).
func writtenTile(t *graph.Task) ([2]int, bool) {
	for _, ref := range t.Footprint {
		if ref.Mode == graph.ReadWrite {
			return [2]int{ref.I, ref.J}, true
		}
	}
	return [2]int{}, false
}

// assign picks a worker (min estimated completion time over the candidate
// set) and prefetches remote tiles to its node.
func (s *sim) assign(t *graph.Task) {
	candidates := s.candidateWorkers(t)
	bestW, bestECT := -1, math.Inf(1)
	for _, w := range candidates {
		exec := s.c.Node.Time(s.c.workerClass(w), t.Kind)
		if math.IsInf(exec, 1) {
			continue
		}
		ect := math.Max(s.estFree[w], s.now) + s.transferEstimate(t, s.c.workerNode(w)) + exec
		if ect < bestECT {
			bestECT, bestW = ect, w
		}
	}
	if bestW == -1 {
		panic(fmt.Sprintf("distributed: task %s runnable nowhere", t.Name()))
	}
	ready := s.fetch(t, s.c.workerNode(bestW))
	s.dataReady[t.ID] = ready
	exec := s.c.Node.Time(s.c.workerClass(bestW), t.Kind)
	s.estFree[bestW] = math.Max(math.Max(s.estFree[bestW], s.now), ready) + exec

	e := entry{task: t, seq: s.seq}
	s.seq++
	if s.prio != nil {
		e.prio = s.prio[t.ID]
		q := s.queues[bestW]
		pos := sort.Search(len(q), func(i int) bool { return q[i].prio < e.prio })
		q = append(q, entry{})
		copy(q[pos+1:], q[pos:])
		q[pos] = e
		s.queues[bestW] = q
	} else {
		s.queues[bestW] = append(s.queues[bestW], e)
	}
}

// candidateWorkers returns the workers a task may run on: the owner node's
// workers under owner-computes, everything otherwise.
func (s *sim) candidateWorkers(t *graph.Task) []int {
	if s.opt.Dist == nil {
		all := make([]int, s.c.Workers())
		for i := range all {
			all[i] = i
		}
		return all
	}
	key, ok := writtenTile(t)
	node := 0
	if ok {
		node = s.opt.Dist.Owner(key[0], key[1]) % s.c.Nodes
	}
	perNode := s.c.Node.Workers()
	out := make([]int, perNode)
	for i := range out {
		out[i] = node*perNode + i
	}
	return out
}

// transferEstimate sums one network hop per tile missing on the node.
func (s *sim) transferEstimate(t *graph.Task, node int) float64 {
	if !s.c.Net.Enabled {
		return 0
	}
	hop := s.c.Net.TransferTime(s.c.TileBytes)
	total := 0.0
	for _, ref := range t.Footprint {
		if !s.locations[[2]int{ref.I, ref.J}][node] {
			total += hop
		}
	}
	return total
}

// fetch schedules the network transfers bringing t's tiles to node,
// serializing on the sender's and receiver's NICs, and returns the arrival
// time of the last tile.
func (s *sim) fetch(t *graph.Task, node int) float64 {
	ready := s.now
	for _, ref := range t.Footprint {
		key := [2]int{ref.I, ref.J}
		locs := s.locations[key]
		if locs[node] {
			continue
		}
		if !s.c.Net.Enabled {
			locs[node] = true
			continue
		}
		src := s.pickSource(locs)
		hop := s.c.Net.TransferTime(s.c.TileBytes)
		start := math.Max(s.now, math.Max(s.nicFree[src], s.nicFree[node]))
		end := start + hop
		s.nicFree[src] = end
		s.nicFree[node] = end
		s.res.NetSec += hop
		s.res.NetTransfers++
		locs[node] = true
		if end > ready {
			ready = end
		}
	}
	return ready
}

func (s *sim) pickSource(locs map[int]bool) int {
	best := math.MaxInt32
	for n, ok := range locs {
		if ok && n < best {
			best = n
		}
	}
	return best
}

// startAll launches head-of-queue tasks on idle workers.
func (s *sim) startAll(events *evHeap) {
	for w := range s.queues {
		if s.executing[w] || len(s.queues[w]) == 0 {
			continue
		}
		e := s.queues[w][0]
		s.queues[w] = s.queues[w][1:]
		t := e.task
		start := math.Max(math.Max(s.now, s.workerFree[w]), s.dataReady[t.ID])
		exec := s.c.Node.Time(s.c.workerClass(w), t.Kind)
		end := start + exec
		s.res.Start[t.ID], s.res.End[t.ID], s.res.Worker[t.ID] = start, end, w
		s.res.NodeBusySec[s.c.workerNode(w)] += exec
		s.executing[w] = true
		s.workerFree[w] = end
		heap.Push(events, event{time: end, seq: s.seq, worker: w, task: t})
		s.seq++
	}
}

// Validate checks a distributed result is a legal schedule.
func Validate(d *graph.DAG, c *Cluster, r *Result) error {
	perWorker := map[int][][2]float64{}
	for _, t := range d.Tasks {
		id := t.ID
		w := r.Worker[id]
		if w < 0 || w >= c.Workers() {
			return fmt.Errorf("distributed: task %s on invalid worker %d", t.Name(), w)
		}
		if math.IsInf(c.Node.Time(c.workerClass(w), t.Kind), 1) {
			return fmt.Errorf("distributed: task %s on incapable worker", t.Name())
		}
		for _, pr := range t.Pred {
			if r.Start[id] < r.End[pr]-1e-9 {
				return fmt.Errorf("distributed: dependency %d→%d violated", pr, id)
			}
		}
		perWorker[w] = append(perWorker[w], [2]float64{r.Start[id], r.End[id]})
	}
	for w, ivs := range perWorker {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		for i := 1; i < len(ivs); i++ {
			if ivs[i][0] < ivs[i-1][1]-1e-9 {
				return fmt.Errorf("distributed: overlap on worker %d", w)
			}
		}
	}
	return nil
}

// OwnerOf exposes the owner-computes placement used for a task (tests).
func OwnerOf(t *graph.Task, dist Distribution, nodes int) int {
	key, ok := writtenTile(t)
	if !ok {
		return 0
	}
	return dist.Owner(key[0], key[1]) % nodes
}

// WeightedCyclic distributes tile rows over nodes proportionally to node
// weights — the natural static answer to heterogeneous clusters (give the
// node with 2 GPUs twice the rows). The paper's §II-B claims static layouts
// stop being an option under heterogeneity; this distribution is the
// strongest static contender to test that claim against.
type WeightedCyclic struct {
	Weights []float64 // per node; need not be normalized
}

// Name identifies the layout.
func (w WeightedCyclic) Name() string { return fmt.Sprintf("weighted-cyclic-%d", len(w.Weights)) }

// Owner assigns row i by weighted round-robin: within one period of
// Σweights (scaled to integers), node n owns a contiguous share of slots
// proportional to its weight.
func (w WeightedCyclic) Owner(i, j int) int {
	if len(w.Weights) == 0 {
		return 0
	}
	// Quantize weights to a common period of 100 slots.
	const period = 100
	total := 0.0
	for _, x := range w.Weights {
		total += x
	}
	if total <= 0 {
		return 0
	}
	slot := ((i % period) + period) % period
	acc := 0.0
	for n, x := range w.Weights {
		acc += x / total * period
		if float64(slot) < acc {
			return n
		}
	}
	return len(w.Weights) - 1
}
