package sched

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

// fakeView is a minimal scheduler view for unit tests.
type fakeView struct {
	p        *platform.Platform
	now      float64
	queueEnd []float64
	transfer func(w int, t *graph.Task) float64
}

func (v *fakeView) Now() float64          { return v.now }
func (v *fakeView) Workers() int          { return v.p.Workers() }
func (v *fakeView) WorkerClass(w int) int { return v.p.WorkerClass(w) }
func (v *fakeView) QueueEnd(w int) float64 {
	if v.queueEnd == nil {
		return 0
	}
	return v.queueEnd[w]
}
func (v *fakeView) ExecTime(w int, t *graph.Task) float64 {
	return v.p.Time(v.p.WorkerClass(w), t.Kind)
}
func (v *fakeView) TransferEstimate(w int, t *graph.Task) float64 {
	if v.transfer == nil {
		return 0
	}
	return v.transfer(w, t)
}

func gemmTask(d *graph.DAG) *graph.Task {
	for _, t := range d.Tasks {
		if t.Kind == graph.GEMM {
			return t
		}
	}
	return nil
}

func potrfTask(d *graph.DAG) *graph.Task {
	for _, t := range d.Tasks {
		if t.Kind == graph.POTRF {
			return t
		}
	}
	return nil
}

func TestDMDAPicksFastestIdleWorker(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(5)
	s := NewDMDA()
	s.Init(d, p, 0)
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	// An idle platform: GEMM should go to a GPU (29× faster).
	w := s.Assign(v, gemmTask(d))
	if p.WorkerClass(w) != 1 {
		t.Fatalf("GEMM assigned to class %d, want GPU", p.WorkerClass(w))
	}
}

func TestDMDARespectsLoad(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(5)
	s := NewDMDA()
	s.Init(d, p, 0)
	// GPUs all busy for a long time: a POTRF should go to an idle CPU
	// (CPU POTRF ≈ 54 ms < GPU queue 10 s + 27 ms).
	qe := make([]float64, 12)
	for w := 9; w < 12; w++ {
		qe[w] = 10.0
	}
	v := &fakeView{p: p, queueEnd: qe}
	w := s.Assign(v, potrfTask(d))
	if p.WorkerClass(w) != 0 {
		t.Fatalf("POTRF assigned to class %d, want idle CPU", p.WorkerClass(w))
	}
}

func TestDMDATransferAware(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(5)
	s := NewDMDA()
	s.Init(d, p, 0)
	task := gemmTask(d)
	// Make transfers to GPUs prohibitively expensive: dmda must pick CPU;
	// the nocomm variant must still pick a GPU.
	v := &fakeView{p: p, queueEnd: make([]float64, 12), transfer: func(w int, _ *graph.Task) float64 {
		if p.WorkerClass(w) == 1 {
			return 100.0
		}
		return 0
	}}
	if w := s.Assign(v, task); p.WorkerClass(w) != 0 {
		t.Fatal("dmda ignored transfer cost")
	}
	nc := NewDMDANoComm()
	nc.Init(d, p, 0)
	if w := nc.Assign(v, task); p.WorkerClass(w) != 1 {
		t.Fatal("dmda-nocomm should ignore transfer cost")
	}
}

func TestDMDASPrioritiesAreBottomLevels(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	s := NewDMDAS()
	s.Init(d, p, 0)
	if !s.Ordered() {
		t.Fatal("dmdas must be ordered")
	}
	// POTRF_0 heads the longest chain: highest priority.
	var maxPrio float64
	for _, tk := range d.Tasks {
		if pr := s.Priority(tk); pr > maxPrio {
			maxPrio = pr
		}
	}
	if s.Priority(d.Tasks[0]) != maxPrio || d.Tasks[0].Kind != graph.POTRF {
		t.Fatal("POTRF_0 should carry the maximum priority")
	}
	// Priorities strictly decrease along any edge.
	for _, tk := range d.Tasks {
		for _, succ := range tk.Succ {
			if s.Priority(tk) <= s.Priority(d.Tasks[succ]) {
				t.Fatalf("priority not decreasing along %s→%s",
					tk.Name(), d.Tasks[succ].Name())
			}
		}
	}
}

func TestDMDAUnordered(t *testing.T) {
	s := NewDMDA()
	if s.Ordered() {
		t.Fatal("dmda must be FIFO")
	}
	if s.Priority(&graph.Task{}) != 0 {
		t.Fatal("dmda priority should be 0")
	}
}

func TestHintForcesClass(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(10)
	s := NewDMDASWithHints("hinted", TrsmTriangleOnCPU(3))
	s.Init(d, p, 0)
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	for _, tk := range d.Tasks {
		w := s.Assign(v, tk)
		if tk.Kind == graph.TRSM && tk.I-tk.K >= 3 {
			if p.WorkerClass(w) != 0 {
				t.Fatalf("far TRSM %s not forced to CPU", tk.Name())
			}
		}
	}
	// Near-diagonal TRSMs stay dynamic (idle platform ⇒ GPU).
	for _, tk := range d.Tasks {
		if tk.Kind == graph.TRSM && tk.I-tk.K < 3 {
			if w := s.Assign(v, tk); p.WorkerClass(w) != 1 {
				t.Fatalf("near TRSM %s should pick GPU on idle platform", tk.Name())
			}
		}
	}
}

func TestGemmSyrkOnGPUHint(t *testing.T) {
	hint := GemmSyrkOnGPU()
	if c := hint(&graph.Task{Kind: graph.GEMM}); len(c) != 1 || c[0] != 1 {
		t.Fatal("GEMM not forced to GPU")
	}
	if c := hint(&graph.Task{Kind: graph.SYRK}); len(c) != 1 || c[0] != 1 {
		t.Fatal("SYRK not forced to GPU")
	}
	if hint(&graph.Task{Kind: graph.POTRF}) != nil {
		t.Fatal("POTRF should stay dynamic")
	}
}

func TestTrsmFractionOnCPU(t *testing.T) {
	p := 10
	hint := TrsmFractionOnCPU(p, 0.5)
	forced, free := 0, 0
	d := graph.Cholesky(p)
	for _, tk := range d.Tasks {
		if tk.Kind != graph.TRSM {
			continue
		}
		if c := hint(tk); c != nil {
			forced++
		} else {
			free++
		}
	}
	total := forced + free
	if total != p*(p-1)/2 {
		t.Fatalf("saw %d TRSMs", total)
	}
	// Roughly half forced.
	if forced < total/3 || forced > 2*total/3 {
		t.Fatalf("forced %d of %d, want ≈half", forced, total)
	}
	// The farthest TRSM of panel 0 (i = p−1) must be forced.
	if c := hint(&graph.Task{Kind: graph.TRSM, I: p - 1, K: 0}); c == nil {
		t.Fatal("bottom TRSM not forced")
	}
}

func TestClassMapAndCombine(t *testing.T) {
	m := ClassMap(map[int]int{7: 1})
	if c := m(&graph.Task{ID: 7}); len(c) != 1 || c[0] != 1 {
		t.Fatal("ClassMap failed")
	}
	if m(&graph.Task{ID: 8}) != nil {
		t.Fatal("unmapped task should be free")
	}
	comb := Combine(nil, m, GemmSyrkOnGPU())
	if c := comb(&graph.Task{ID: 7, Kind: graph.POTRF}); len(c) != 1 || c[0] != 1 {
		t.Fatal("Combine should apply first non-nil hint")
	}
	if c := comb(&graph.Task{ID: 9, Kind: graph.GEMM}); len(c) != 1 || c[0] != 1 {
		t.Fatal("Combine should fall through to later hints")
	}
	if comb(&graph.Task{ID: 9, Kind: graph.POTRF}) != nil {
		t.Fatal("Combine should return nil when no hint fires")
	}
}

func TestHintFallbackWhenClassCannotRun(t *testing.T) {
	// Force POTRF to a class that cannot run it: Assign must fall back
	// rather than return no worker.
	p := platform.Mirage()
	delete(p.Classes[1].Times, graph.POTRF)
	d := graph.Cholesky(3)
	s := NewDMDAWithHints("bad-hint", func(t *graph.Task) []int {
		if t.Kind == graph.POTRF {
			return []int{1}
		}
		return nil
	})
	s.Init(d, p, 0)
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	w := s.Assign(v, potrfTask(d))
	if math.IsInf(p.Time(p.WorkerClass(w), graph.POTRF), 1) {
		t.Fatal("fallback picked incapable worker")
	}
}

func TestRandomIsWeightedTowardGPU(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	s := NewRandom()
	s.Init(d, p, 42)
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	gpu := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if p.WorkerClass(s.Assign(v, gemmTask(d))) == 1 {
			gpu++
		}
	}
	// Weight per GPU ≈ 22 vs 1 per CPU: 3·22/(3·22+9) ≈ 88 % of draws.
	frac := float64(gpu) / trials
	if frac < 0.75 || frac > 0.98 {
		t.Fatalf("GPU fraction %.2f outside expected band", frac)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(6)
	draw := func(seed int64) []int {
		s := NewRandom()
		s.Init(d, p, seed)
		v := &fakeView{p: p, queueEnd: make([]float64, 12)}
		var out []int
		for i := 0; i < 50; i++ {
			out = append(out, s.Assign(v, gemmTask(d)))
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random scheduler not deterministic for equal seeds")
		}
	}
}

func TestGreedyPicksLeastLoaded(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	s := NewGreedy()
	s.Init(d, p, 0)
	qe := make([]float64, 12)
	for w := 0; w < 12; w++ {
		qe[w] = float64(12 - w) // worker 11 least loaded
	}
	v := &fakeView{p: p, queueEnd: qe}
	if w := s.Assign(v, gemmTask(d)); w != 11 {
		t.Fatalf("greedy picked %d, want 11", w)
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, tc := range []struct {
		s    Scheduler
		want string
	}{
		{NewDMDA(), "dmda"},
		{NewDMDAS(), "dmdas"},
		{NewRandom(), "random"},
		{NewGreedy(), "greedy"},
		{NewDMDANoComm(), "dmda-nocomm"},
		{NewTriangleTRSM(6), "dmdas+trsm-cpu(k=6)"},
	} {
		if tc.s.Name() != tc.want {
			t.Fatalf("name %q, want %q", tc.s.Name(), tc.want)
		}
	}
}

func TestHEFTValidSchedule(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(6)
	s, err := HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(d, p); err != nil {
		t.Fatal(err)
	}
	if s.EstMakespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	// Dependencies respected in the planned times.
	for _, tk := range d.Tasks {
		for _, pr := range tk.Pred {
			prEnd := s.Start[pr] + p.Time(p.WorkerClass(s.Worker[pr]), d.Tasks[pr].Kind)
			if s.Start[tk.ID] < prEnd-1e-9 {
				t.Fatalf("HEFT plan violates %d→%d", pr, tk.ID)
			}
		}
	}
}

func TestHEFTBeatsSerialExecution(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	s, err := HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	serial := d.TotalWeight(func(tk *graph.Task) float64 { return p.FastestTime(tk.Kind) })
	if s.EstMakespan >= serial {
		t.Fatalf("HEFT %g not better than serial-fastest %g", s.EstMakespan, serial)
	}
}

func TestStaticScheduleValidateErrors(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(3)
	s := &StaticSchedule{Worker: []int{0}, Start: []float64{0}}
	if err := s.Validate(d, p); err == nil {
		t.Fatal("expected length error")
	}
	h, _ := HEFT(d, p)
	h.Worker[0] = 99
	if err := h.Validate(d, p); err == nil {
		t.Fatal("expected invalid-worker error")
	}
}

func TestStaticSchedulerInjection(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	h, err := HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Scheduler("heft-injected")
	s.Init(d, p, 0)
	if !s.Ordered() {
		t.Fatal("static injection must be ordered")
	}
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	for _, tk := range d.Tasks {
		if got := s.Assign(v, tk); got != h.Worker[tk.ID] {
			t.Fatalf("task %d routed to %d, plan says %d", tk.ID, got, h.Worker[tk.ID])
		}
	}
	// Earlier planned start ⇒ higher priority.
	if s.Priority(d.Tasks[0]) < s.Priority(d.Tasks[len(d.Tasks)-1]) {
		t.Fatal("priorities should favour earlier planned starts")
	}
}

func TestStaticSchedulerMismatchedDAGPanics(t *testing.T) {
	p := platform.Mirage()
	h, _ := HEFT(graph.Cholesky(3), p)
	s := h.Scheduler("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Init(graph.Cholesky(4), p, 0)
}

func TestClassOfAndMappingScheduler(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	h, _ := HEFT(d, p)
	cls := h.ClassOf(p)
	if len(cls) != len(d.Tasks) {
		t.Fatal("ClassOf incomplete")
	}
	ms := h.MappingScheduler(p)
	ms.Init(d, p, 0)
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	for _, tk := range d.Tasks {
		w := ms.Assign(v, tk)
		if p.WorkerClass(w) != cls[tk.ID] {
			t.Fatalf("mapping scheduler put task %d on class %d, want %d",
				tk.ID, p.WorkerClass(w), cls[tk.ID])
		}
	}
}

func TestHEFTInsertionValidAndNoWorse(t *testing.T) {
	p := platform.Mirage()
	for _, n := range []int{3, 6, 10} {
		d := graph.Cholesky(n)
		plain, err := HEFT(d, p)
		if err != nil {
			t.Fatal(err)
		}
		ins, err := HEFTInsertion(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.Validate(d, p); err != nil {
			t.Fatal(err)
		}
		// Plan-internal consistency: deps respected, no overlap per worker.
		for _, tk := range d.Tasks {
			for _, pr := range tk.Pred {
				prEnd := ins.Start[pr] + p.Time(p.WorkerClass(ins.Worker[pr]), d.Tasks[pr].Kind)
				if ins.Start[tk.ID] < prEnd-1e-9 {
					t.Fatalf("n=%d: insertion plan violates %d→%d", n, pr, tk.ID)
				}
			}
		}
		perW := map[int][][2]float64{}
		for id, w := range ins.Worker {
			end := ins.Start[id] + p.Time(p.WorkerClass(w), d.Tasks[id].Kind)
			perW[w] = append(perW[w], [2]float64{ins.Start[id], end})
		}
		for w, ivs := range perW {
			sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
			for i := 1; i < len(ivs); i++ {
				if ivs[i][0] < ivs[i-1][1]-1e-9 {
					t.Fatalf("n=%d worker %d: overlap", n, w)
				}
			}
		}
		// Insertion is the refinement: it should not lose by much (allow 5 %
		// slack — per-decision optimality is not global optimality).
		if ins.EstMakespan > plain.EstMakespan*1.05 {
			t.Fatalf("n=%d: insertion %g much worse than plain %g",
				n, ins.EstMakespan, plain.EstMakespan)
		}
	}
}

func TestHEFTInsertionUsesGaps(t *testing.T) {
	// Construct a situation with a gap: on Mirage the Cholesky DAG leaves
	// early idle gaps on CPUs; insertion should never start a task earlier
	// than ready or overlap anything (checked above); here simply confirm it
	// can beat or tie plain HEFT on at least one mid-size instance.
	p := platform.Mirage()
	d := graph.Cholesky(12)
	plain, _ := HEFT(d, p)
	ins, err := HEFTInsertion(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if ins.EstMakespan > plain.EstMakespan+1e-9 {
		t.Logf("insertion %g vs plain %g (not better here)", ins.EstMakespan, plain.EstMakespan)
	}
	if ins.EstMakespan <= 0 {
		t.Fatal("bad makespan")
	}
}

func TestDMDARPrefersResidentData(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(5)
	s := NewDMDAR()
	s.Init(d, p, 0)
	if !s.Ordered() || s.Name() != "dmdar" {
		t.Fatal("dmdar metadata")
	}
	// Two tasks assigned to the same idle platform; the one with the larger
	// pending transfer must get the lower priority.
	cheap := gemmTask(d)
	expensive := potrfTask(d)
	v := &fakeView{p: p, queueEnd: make([]float64, 12), transfer: func(w int, tk *graph.Task) float64 {
		if tk == expensive {
			return 0.5
		}
		return 0
	}}
	s.Assign(v, cheap)
	s.Assign(v, expensive)
	if s.Priority(cheap) <= s.Priority(expensive) {
		t.Fatalf("resident-data task should outrank transfer-bound task: %g vs %g",
			s.Priority(cheap), s.Priority(expensive))
	}
}

func TestOrderSchedulerUsesPlanOrder(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	h, err := HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	s := h.OrderScheduler()
	s.Init(d, p, 0)
	if !s.Ordered() || s.Name() != "dmda+cp-order" {
		t.Fatal("order scheduler metadata")
	}
	// Earlier planned start ⇒ higher priority; worker choice stays dynamic
	// (idle platform: GEMM goes to a GPU even if the plan said otherwise).
	var early, late *graph.Task
	for _, tk := range d.Tasks {
		if early == nil || h.Start[tk.ID] < h.Start[early.ID] {
			early = tk
		}
		if late == nil || h.Start[tk.ID] > h.Start[late.ID] {
			late = tk
		}
	}
	if s.Priority(early) <= s.Priority(late) {
		t.Fatal("priorities do not follow planned order")
	}
	v := &fakeView{p: p, queueEnd: make([]float64, 12)}
	if w := s.Assign(v, gemmTask(d)); p.WorkerClass(w) != 1 {
		t.Fatal("order-only injection should keep dynamic worker choice")
	}
}

func TestDMDASAvgPrioUsesAverages(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	fast := NewDMDAS()
	avg := NewDMDASAvgPrio()
	fast.Init(d, p, 0)
	avg.Init(d, p, 0)
	if avg.Name() != "dmdas-avgprio" || !avg.Ordered() {
		t.Fatal("metadata")
	}
	// Average times are larger than fastest times on Mirage, so the root's
	// bottom level must be strictly larger under the average convention.
	root := d.Tasks[0]
	if avg.Priority(root) <= fast.Priority(root) {
		t.Fatalf("avg priority %g not above fastest %g",
			avg.Priority(root), fast.Priority(root))
	}
}

func TestGreedyMetadata(t *testing.T) {
	g := NewGreedy()
	if g.Ordered() || g.Priority(&graph.Task{}) != 0 {
		t.Fatal("greedy should be FIFO with zero priorities")
	}
}

func TestStaticSchedulerGating(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(3)
	h, _ := HEFT(d, p)
	s := h.Scheduler("gate-test").(interface {
		Scheduler
		Gater
	})
	s.Init(d, p, 0)
	if s.Name() != "gate-test" {
		t.Fatal("name")
	}
	// Find two tasks planned consecutively on one worker: the later may not
	// start until the earlier completed.
	perWorker := map[int][]int{}
	for id, w := range h.Worker {
		perWorker[w] = append(perWorker[w], id)
	}
	for _, ids := range perWorker {
		if len(ids) < 2 {
			continue
		}
		sort.Slice(ids, func(a, b int) bool { return h.Start[ids[a]] < h.Start[ids[b]] })
		first, second := ids[0], ids[1]
		noneDone := func(int) bool { return false }
		firstDone := func(id int) bool { return id == first }
		if !s.MayStart(d.Tasks[first], noneDone) {
			t.Fatal("first planned task should be startable")
		}
		if s.MayStart(d.Tasks[second], noneDone) {
			t.Fatal("second task started before its worker predecessor")
		}
		if !s.MayStart(d.Tasks[second], firstDone) {
			t.Fatal("second task blocked after predecessor completed")
		}
		return
	}
	t.Skip("no worker with two planned tasks at this size")
}

func TestAllowedClassesExposed(t *testing.T) {
	s := NewDMDASWithHints("h", TrsmTriangleOnCPU(2)).(ClassRestricter)
	if c := s.AllowedClasses(&graph.Task{Kind: graph.TRSM, I: 5, K: 0}); len(c) != 1 || c[0] != 0 {
		t.Fatal("restriction not exposed")
	}
	if s.AllowedClasses(&graph.Task{Kind: graph.GEMM}) != nil {
		t.Fatal("unrestricted task should return nil")
	}
	plain := NewDMDA().(ClassRestricter)
	if plain.AllowedClasses(&graph.Task{}) != nil {
		t.Fatal("hint-free scheduler should return nil")
	}
}
