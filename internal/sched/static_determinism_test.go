package sched

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

// TestStaticInitDeterministicPrev initializes the same static schedule
// repeatedly — with every planned start time collapsed to zero so the order
// tie-break carries all the weight — and checks the derived per-worker
// predecessor chains come out identical each time. Init used to group the
// planned tasks by worker in a map; indexing by worker keeps the whole
// derivation order-independent of the runtime's map seed.
func TestStaticInitDeterministicPrev(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(4)
	plan, err := HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Start {
		plan.Start[i] = 0 // force every comparison through the seq tie-break
	}
	var want []int
	for i := 0; i < 50; i++ {
		s := plan.Scheduler("static").(*staticSched)
		s.Init(d, p, 0)
		if i == 0 {
			want = append([]int(nil), s.prev...)
			// With all starts equal the planned order on each worker must
			// degrade to ascending task ID: every chain edge goes up.
			for id, prev := range want {
				if prev >= id {
					t.Fatalf("task %d follows %d on its worker; ties must break on ascending ID", id, prev)
				}
			}
			continue
		}
		if !reflect.DeepEqual(s.prev, want) {
			t.Fatalf("iteration %d: prev chains %v differ from first iteration's %v", i, s.prev, want)
		}
	}
}
