package cliflags

import (
	"flag"
	"testing"
)

func TestParseSplit(t *testing.T) {
	sp, err := ParseSplit("2@4")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Factor != 2 || sp.FromK != 4 {
		t.Fatalf("parsed %+v", sp)
	}
	if sp.String() != "2@4" {
		t.Fatalf("String() = %q", sp.String())
	}
	for _, bad := range []string{"", "2", "@", "2@", "@4", "x@4", "2@x", "1@4", "0@4", "-2@4", "2@-1", "2.5@4"} {
		if _, err := ParseSplit(bad); err == nil {
			t.Errorf("ParseSplit(%q) accepted", bad)
		}
	}
}

func TestSplitCheck(t *testing.T) {
	sp := Split{Factor: 2, FromK: 4}
	if err := sp.Check(8, 960); err != nil {
		t.Fatal(err)
	}
	if err := sp.Check(3, 960); err == nil {
		t.Fatal("fromK beyond tile count accepted")
	}
	if err := (Split{Factor: 7, FromK: 2}).Check(8, 960); err == nil {
		t.Fatal("non-dividing factor accepted")
	}
}

func TestFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	nb := NB(fs, 960, "the simulated kernels")
	split := NBSplit(fs)
	if err := fs.Parse([]string{"-nb", "480", "-nb-split", "2@7"}); err != nil {
		t.Fatal(err)
	}
	if *nb != 480 || *split != "2@7" {
		t.Fatalf("nb=%d split=%q", *nb, *split)
	}
}
