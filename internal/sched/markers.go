package sched

// The marker interfaces below are claims with teeth: chollint's puremark
// analyzer (internal/analysis) proves every `return true` body against
// interprocedural effect summaries — a claim it cannot prove is a lint
// failure, not a comment. See DESIGN.md, "Static analysis".

// SeedInvariant is an optional Scheduler extension declaring that the policy
// ignores the Init seed entirely: for a fixed (DAG, platform), runs under any
// two seeds produce identical decisions. internal/replay uses it to collapse
// a multi-seed batch to one simulation when the jitter model is off.
//
// The declaration doubles as an identity contract: replay keys deduplication
// on Name(), so a scheduler reporting true must encode its whole policy
// configuration in its name (as the registered families do — "dmdas",
// "partition:0.5", "dmdas+trsm-cpu(k=6)"). Policies configured from external
// artifacts that the name cannot capture (injected static plans) must report
// false even though they never read the seed.
type SeedInvariant interface {
	SeedInvariant() bool
}

// PureAssign is an optional Scheduler extension declaring that the policy
// carries no mutable per-run state beyond what Init computes: Assign and
// Priority read but never write the scheduler. internal/replay requires it
// for delta resumption — a fresh Init'ed instance must behave identically to
// the base run's instance at any decision index, which a policy mutated per
// Assign (dmdar's locality map, random's RNG) cannot guarantee.
type PureAssign interface {
	PureAssign() bool
}

// IsSeedInvariant reports whether s declares seed invariance.
func IsSeedInvariant(s Scheduler) bool {
	si, ok := s.(SeedInvariant)
	return ok && si.SeedInvariant()
}

// IsPureAssign reports whether s declares assignment purity.
func IsPureAssign(s Scheduler) bool {
	pa, ok := s.(PureAssign)
	return ok && pa.PureAssign()
}

// Shareable reports whether one instance of s may serve interleaved Assign/
// Priority calls from many concurrently-advancing simulation lanes of the
// same (DAG, platform), Init'ed once for the whole batch. Both proven marker
// claims are required: SeedInvariant makes the single Init seed immaterial
// to every lane, and PureAssign guarantees the interleaving leaves no trace
// — Assign and Priority never write the instance, so each lane observes
// exactly the scheduler a private instance would have been. replay.Lanes
// keys batch-wide scheduler sharing (and hence its ECT evaluation over a
// lane batch through the per-lane sched.View) on this predicate; policies
// failing it get a fresh instance per lane instead.
func Shareable(s Scheduler) bool {
	return IsSeedInvariant(s) && IsPureAssign(s)
}

// The dm family never reads the seed and keeps all state in the Init-computed
// priority table. Embedders with per-Assign state or out-of-name
// configuration must override (dmdar, orderSched below).
func (s *dm) SeedInvariant() bool { return true }
func (s *dm) PureAssign() bool    { return true }

func (greedy) SeedInvariant() bool { return true }
func (greedy) PureAssign() bool    { return true }

// random draws a worker from its seeded RNG on every Assign.
func (s *randomSched) SeedInvariant() bool { return false }
func (s *randomSched) PureAssign() bool    { return false }

// dmdar ignores the seed but updates its locality map on every Assign, so a
// fresh instance cannot stand in for the base run's mid-run state.
func (s *dmdar) PureAssign() bool { return false }

// orderSched's plan comes from an injected static schedule the name cannot
// identify; two same-named instances may disagree on every decision.
func (s *orderSched) SeedInvariant() bool { return false }
