package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Runner produces one experiment's output (rendered text plus, when
// tabular, the underlying table for CSV export).
type Runner struct {
	ID          string
	Description string
	Run         func(cfg Config) (text string, table *stats.Table, err error)
}

func tableRunner(id, desc string, f func(Config) (*stats.Table, error)) Runner {
	return Runner{ID: id, Description: desc, Run: func(cfg Config) (string, *stats.Table, error) {
		t, err := f(cfg)
		if err != nil {
			return "", nil, err
		}
		return t.Render() + "\n" + t.Plot(16), t, nil
	}}
}

// Registry lists every reproducible artifact by its paper ID.
func Registry() []Runner {
	rs := []Runner{
		tableRunner("table1", "Table I: GPU/CPU speedup per kernel",
			func(cfg Config) (*stats.Table, error) { return TableI(cfg), nil }),
		tableRunner("tablek", "Acceleration factors K(n) (Section V-C2)",
			func(cfg Config) (*stats.Table, error) { return TableK(cfg), nil }),
		tableRunner("fig2", "Figure 2: theoretical performance upper bounds", Fig2),
		tableRunner("fig3", "Figure 3: homogeneous actual (overhead substitute)", Fig3),
		tableRunner("fig3real", "Figure 3 (real Go execution, host scale)", Fig3Real),
		tableRunner("fig4", "Figure 4: homogeneous simulated + mixed bound", Fig4),
		tableRunner("fig5", "Figure 5: heterogeneous related simulated", Fig5),
		tableRunner("fig6", "Figure 6: heterogeneous unrelated actual (overhead substitute)", Fig6),
		tableRunner("fig7", "Figure 7: heterogeneous unrelated simulated + mixed bound", Fig7),
		tableRunner("fig8", "Figure 8: related case scaled to unrelated bound", Fig8),
		{ID: "fig1", Description: "Figure 1: the 5x5-tile Cholesky task graph (Graphviz DOT)",
			Run: func(cfg Config) (string, *stats.Table, error) { return Fig1(cfg), nil, nil }},
		{ID: "fig9", Description: "Figure 9: TRSMs forced on CPUs (picture)",
			Run: func(cfg Config) (string, *stats.Table, error) {
				n := 16
				if len(cfg.Sizes) > 0 {
					n = cfg.Sizes[len(cfg.Sizes)-1]
				}
				return Fig9(n, 6), nil, nil
			}},
		tableRunner("fig10", "Figure 10: simulated performance with static knowledge", Fig10),
		tableRunner("fig11", "Figure 11: actual performance with static knowledge (substitute)", Fig11),
		{ID: "fig12", Description: "Figure 12: GPU traces dmda vs dmdas (8×8 tiles)",
			Run: func(cfg Config) (string, *stats.Table, error) {
				s, err := Fig12(cfg)
				return s, nil, err
			}},
		tableRunner("mapping", "Section VI-B: CP mapping-only injection", MappingOnly),
		tableRunner("gemmsyrk", "Section V-C3: GEMM+SYRK forced on GPUs", GemmSyrkHint),
		tableRunner("transfer", "Ablation: transfer-aware vs transfer-blind dmda", TransferAblation),
		tableRunner("luqr", "Extension: LU and QR under the paper's methodology", OtherFactorizations),
		tableRunner("commcp", "Extension: communication-aware CP injection", CommAwareCP),
		tableRunner("ws", "Ablation: work stealing on the random policy", WorkStealing),
		tableRunner("memory", "Ablation: GPU memory capacity sweep", func(cfg Config) (*stats.Table, error) { return MemorySweep(cfg, 16, nil) }),
		tableRunner("distributed", "Extension: cluster owner-computes vs dynamic", Distributed),
		tableRunner("tilesize", "Extension: tile-size autotuning sweep", func(cfg Config) (*stats.Table, error) { return TileSizeSweep(cfg, 0, nil) }),
		tableRunner("banded", "Extension: block-banded (irregular) Cholesky", func(cfg Config) (*stats.Table, error) { return Banded(cfg, 32, nil) }),
		tableRunner("batched", "Extension: batched concurrent factorizations", func(cfg Config) (*stats.Table, error) { return Batched(cfg, 8, 4) }),
		tableRunner("priosrc", "Ablation: dmdas priority source (fastest vs average)", PrioritySource),
		tableRunner("fidelity", "Methodology: real execution vs calibrated simulation", SimulationFidelity),
		tableRunner("variants", "Extension: right- vs left-looking Cholesky", Variants),
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	return rs
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
