package graph

// Task graphs of the tiled triangular solves that complete the paper's
// §II-A pipeline: after A = L·Lᵀ, the system A·x = b is solved by the
// forward solve L·y = b and the backward solve Lᵀ·x = y. Vector chunks are
// addressed as column −1 tiles ((k, −1)) so the data-flow builder and the
// simulator's transfer model treat them like any other data.

// vecChunk is the tile key of the k-th vector chunk.
func vecChunk(k int) TileRef {
	return TileRef{I: k, J: -1, Mode: ReadWrite}
}

// ForwardSolve builds the DAG of the tiled forward substitution L·y = b on
// a p-tiled factor: TRSV_k solves the diagonal chunk, GEMV_{i,k} (i > k)
// applies the update b_i ← b_i − L_ik·y_k.
func ForwardSolve(p int) *DAG {
	b := newBuilder("forward-solve", p)
	for k := 0; k < p; k++ {
		b.task(TRSV, -1, -1, k,
			TileRef{k, k, Read},
			vecChunk(k))
		for i := k + 1; i < p; i++ {
			b.task(GEMV, i, -1, k,
				TileRef{i, k, Read},
				TileRef{k, -1, Read},
				vecChunk(i))
		}
	}
	return b.finish()
}

// BackwardSolve builds the DAG of the tiled backward substitution
// Lᵀ·x = y: TRSV_k (k = p−1 … 0) solves chunk k against L_kkᵀ, and
// GEMV_{i,k} (i < k) applies y_i ← y_i − L_kiᵀ·x_k.
func BackwardSolve(p int) *DAG {
	b := newBuilder("backward-solve", p)
	for k := p - 1; k >= 0; k-- {
		b.task(TRSV, -1, -1, k,
			TileRef{k, k, Read},
			vecChunk(k))
		for i := k - 1; i >= 0; i-- {
			b.task(GEMV, i, -1, k,
				TileRef{k, i, Read}, // L_ki with i < k: a lower tile
				TileRef{k, -1, Read},
				vecChunk(i))
		}
	}
	return b.finish()
}
