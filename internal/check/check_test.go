package check

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func certify(t *testing.T, n int) (*Certificate, *graph.DAG, *platform.Platform) {
	t.Helper()
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(n)
	r, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(d, p, r)
	if err != nil {
		t.Fatal(err)
	}
	return c, d, p
}

func TestCertificateRoundTripVerifies(t *testing.T) {
	c, d, p := certify(t, 8)
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(d, p); err != nil {
		t.Fatalf("round-tripped certificate failed verification: %v", err)
	}
}

func TestTamperedMakespanDetected(t *testing.T) {
	c, d, p := certify(t, 6)
	c.MakespanSec *= 0.5 // claim an impossibly fast run
	if err := c.Verify(d, p); err == nil {
		t.Fatal("halved makespan passed verification")
	}
}

func TestTamperedBoundDetected(t *testing.T) {
	c, d, p := certify(t, 6)
	c.MixedBoundSec *= 0.5 // loosen the claimed bound
	if err := c.Verify(d, p); err == nil {
		t.Fatal("tampered bound passed verification (bounds must be recomputed)")
	}
}

func TestTamperedScheduleDetected(t *testing.T) {
	c, d, p := certify(t, 6)
	// Move a task earlier than its predecessor allows.
	for _, tk := range d.Tasks {
		if len(tk.Pred) > 0 {
			c.Start[tk.ID] = 0
			break
		}
	}
	if err := c.Verify(d, p); err == nil {
		t.Fatal("dependency-violating schedule passed verification")
	}
}

func TestWrongDAGDetected(t *testing.T) {
	c, _, p := certify(t, 6)
	other := graph.Cholesky(7)
	if err := c.Verify(other, p); err == nil {
		t.Fatal("certificate verified against the wrong DAG")
	}
}

func TestRefusesInvalidResult(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(4)
	r, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Worker[0] = -1
	if _, err := New(d, p, r); err == nil {
		t.Fatal("certified an invalid result")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}
