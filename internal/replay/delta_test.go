package replay

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// panelHint forces the BLAS-3 updates of trailing panels k ≥ k0 onto the
// CPUs — a Donfack-style split-point knob whose affected tasks become ready
// late, i.e. the delta-friendly sweep shape.
func panelHint(k0 int) func() sched.Scheduler {
	return func() sched.Scheduler {
		return sched.NewDMDASWithHints(fmt.Sprintf("dmdas+panel(k0=%d)", k0),
			func(t *graph.Task) []int {
				if t.K >= k0 && (t.Kind == graph.TRSM || t.Kind == graph.SYRK || t.Kind == graph.GEMM) {
					return []int{0}
				}
				return nil
			})
	}
}

// TestDeltaMatchesScratchSweep runs the two registered knob families over
// their whole parameter range and checks every variant against a
// from-scratch simulation — covering the clone path (no affected decision),
// the resume path (late divergence) and the scratch fallback (divergence
// before the first checkpoint).
func TestDeltaMatchesScratchSweep(t *testing.T) {
	const P = 10
	d, p := graph.Cholesky(P), platform.Mirage()
	ctx := context.Background()
	pool := &Pool{}

	base, err := Record(ctx, d, p, sched.NewDMDAS(), simulator.Options{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseDigest := Digest(base.Rec.Result)

	t.Run("panel-hint", func(t *testing.T) {
		for k0 := 0; k0 <= P; k0++ {
			mk := panelHint(k0)
			opt := simulator.Options{Seed: 1}
			got, err := base.Delta(ctx, mk, opt, PanelKnob(k0), pool)
			if err != nil {
				t.Fatalf("k0=%d: %v", k0, err)
			}
			want, err := simulator.Run(d, p, mk(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if Digest(got) != Digest(want) {
				t.Errorf("k0=%d: delta digest %016x, scratch %016x", k0, Digest(got), Digest(want))
			}
		}
	})
	t.Run("trsm-threshold", func(t *testing.T) {
		for k := 1; k <= P+1; k++ {
			mk := func() sched.Scheduler { return sched.NewTriangleTRSM(k) }
			opt := simulator.Options{Seed: 1}
			got, err := base.Delta(ctx, mk, opt, TrsmKnob(k, P+1), pool)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			want, err := simulator.Run(d, p, mk(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if Digest(got) != Digest(want) {
				t.Errorf("k=%d: delta digest %016x, scratch %016x", k, Digest(got), Digest(want))
			}
		}
	})
	t.Run("seed-knob", func(t *testing.T) {
		for _, seed := range []int64{1, 2, 99} {
			opt := simulator.Options{Seed: seed}
			got, err := base.Delta(ctx, func() sched.Scheduler { return sched.NewDMDAS() }, opt, SeedKnob(), pool)
			if err != nil {
				t.Fatal(err)
			}
			want, err := simulator.Run(d, p, sched.NewDMDAS(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if Digest(got) != Digest(want) {
				t.Errorf("seed=%d: delta digest %016x, scratch %016x", seed, Digest(got), Digest(want))
			}
		}
	})
	if Digest(base.Rec.Result) != baseDigest {
		t.Fatalf("delta queries mutated the base recording")
	}
}

// TestDeltaConservativeFallbacks: variants the resume shortcut cannot prove
// safe must still come back correct (from scratch) — impure schedulers,
// option changes, jittered seed changes.
func TestDeltaConservativeFallbacks(t *testing.T) {
	d, p := graph.Cholesky(8), platform.Mirage()
	ctx := context.Background()
	base, err := Record(ctx, d, p, sched.NewDMDAS(), simulator.Options{Seed: 1, Overhead: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func() sched.Scheduler
		opt  simulator.Options
		knob Knob
	}{
		{"jittered-seed-change", func() sched.Scheduler { return sched.NewDMDAS() },
			simulator.Options{Seed: 2, Overhead: true}, SeedKnob()},
		{"impure-scheduler", func() sched.Scheduler { return sched.NewDMDAR() },
			simulator.Options{Seed: 1, Overhead: true}, FullKnob()},
		{"random-scheduler", func() sched.Scheduler { return sched.NewRandom() },
			simulator.Options{Seed: 5, Overhead: true}, FullKnob()},
		{"option-change", func() sched.Scheduler { return sched.NewDMDAS() },
			simulator.Options{Seed: 1}, SeedKnob()},
		{"stealing-toggle", func() sched.Scheduler { return sched.NewDMDAS() },
			simulator.Options{Seed: 1, Overhead: true, WorkStealing: true}, FullKnob()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := base.Delta(ctx, tc.mk, tc.opt, tc.knob, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := simulator.Run(d, p, tc.mk(), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if Digest(got) != Digest(want) {
				t.Errorf("delta digest %016x, scratch %016x", Digest(got), Digest(want))
			}
		})
	}
}

// FuzzDeltaReplay is the delta contract under random knobs: whatever single
// knob separates variant from base — seed, TRSM threshold, panel split point
// — suffix resimulation must equal from-scratch simulation bit for bit.
func FuzzDeltaReplay(f *testing.F) {
	// First-decision-divergent (panel knob 0 constrains everything).
	f.Add(uint8(5), uint8(2), uint8(0), uint8(0), int64(1), int64(1), false)
	// No divergence at all (equal TRSM thresholds).
	f.Add(uint8(5), uint8(1), uint8(2), uint8(2), int64(1), int64(1), false)
	// No affected task exists (threshold beyond the matrix).
	f.Add(uint8(2), uint8(1), uint8(200), uint8(200), int64(3), int64(3), false)
	// Seed-only change, jitter off → pure clone.
	f.Add(uint8(4), uint8(0), uint8(0), uint8(0), int64(1), int64(9), false)
	// Seed-only change with jitter on → scratch fallback.
	f.Add(uint8(4), uint8(0), uint8(0), uint8(0), int64(1), int64(9), true)
	// Mid-run divergence (late panel split on a bigger matrix).
	f.Add(uint8(7), uint8(2), uint8(0), uint8(6), int64(2), int64(2), false)
	f.Fuzz(func(t *testing.T, pU, kindU, k1U, k2U uint8, seed1, seed2 int64, overhead bool) {
		P := 3 + int(pU%6) // 3..8 tiles
		d, pf := graph.Cholesky(P), platform.Mirage()
		ctx := context.Background()
		baseOpt := simulator.Options{Seed: seed1, Overhead: overhead}
		varOpt := simulator.Options{Seed: seed2, Overhead: overhead}

		var baseSched sched.Scheduler
		var mkVariant func() sched.Scheduler
		var knob Knob
		switch kindU % 3 {
		case 0: // seed knob
			baseSched = sched.NewDMDAS()
			mkVariant = func() sched.Scheduler { return sched.NewDMDAS() }
			knob = SeedKnob()
		case 1: // TRSM triangle threshold
			k1 := 1 + int(k1U)%(P+2)
			k2 := 1 + int(k2U)%(P+2)
			baseSched = sched.NewTriangleTRSM(k1)
			mkVariant = func() sched.Scheduler { return sched.NewTriangleTRSM(k2) }
			knob = TrsmKnob(k1, k2)
			varOpt.Seed = seed1
		case 2: // panel split point (base unhinted)
			k0 := int(k2U) % (P + 1)
			baseSched = sched.NewDMDAS()
			mkVariant = panelHint(k0)
			knob = PanelKnob(k0)
			varOpt.Seed = seed1
		}
		stride := 1 + int(k1U%13)
		base, err := Record(ctx, d, pf, baseSched, baseOpt, stride)
		if err != nil {
			t.Fatal(err)
		}
		got, err := base.Delta(ctx, mkVariant, varOpt, knob, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := simulator.Run(d, pf, mkVariant(), varOpt)
		if err != nil {
			t.Fatal(err)
		}
		if Digest(got) != Digest(want) {
			t.Fatalf("P=%d kind=%d: delta digest %016x, scratch %016x",
				P, kindU%3, Digest(got), Digest(want))
		}
	})
}
