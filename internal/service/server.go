// Package service is the evaluation service layer behind cmd/cholserved: a
// long-running HTTP/JSON façade over the core API that turns one-shot CLI
// evaluations ("bounds + simulated makespan for (platform, scheduler, n)")
// into something that survives sustained concurrent traffic.
//
// It adds three things the library layer deliberately does not have:
//
//   - a concurrency-safe LRU result cache keyed by a canonical request hash
//     (platform fingerprint × scheduler × options × tile count), with
//     singleflight deduplication so identical concurrent misses run the LP
//     solve and event loop once;
//   - a bounded worker pool with a queue-depth limit and a per-request
//     timeout, the context cancelling down through core into the simulator
//     event loop and the CP branch-and-bound;
//   - an observability surface: /metrics in Prometheus text format,
//     /healthz, and net/http/pprof under /debug/pprof/.
//
// Because the service is the one layer that must survive unattended,
// chollint's leakguard analyzer patrols every `go` statement in this
// package: a spawned goroutine whose loop is not tied to a ctx.Done/ctx.Err
// check, a close-gated channel range, or a comma-ok receive is a build
// failure, not a code-review hope (escape: //chollint:leakok with the
// external join spelled out).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/bounds"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/sweep"
)

// Config tunes one Server.
type Config struct {
	// CacheSize is the LRU capacity in entries (default 1024).
	CacheSize int
	// Workers bounds concurrently executing evaluations (default 4).
	Workers int
	// QueueDepth bounds admitted requests waiting for a worker slot; beyond
	// it requests are shed with 503 (default 64).
	QueueDepth int
	// RequestTimeout is the per-request evaluation deadline (default 30s).
	RequestTimeout time.Duration
	// LedgerSize bounds the run ledger: how many recent evaluations stay
	// inspectable through /v1/runs (default 64).
	LedgerSize int
	// FrameRing bounds each ledgered run's live progress-frame buffer: the
	// backlog a late or reconnecting /v1/runs/{id}/live subscriber can
	// replay (default 256 frames; older frames are evicted).
	FrameRing int
	// Heartbeat is the SSE keep-alive comment interval on live streams
	// (default 5s).
	Heartbeat time.Duration
	// StreamTimeout bounds one live-stream connection's lifetime; clients
	// reconnect with Last-Event-ID and resume from the frame ring
	// (default 5m).
	StreamTimeout time.Duration
	// Logger receives one structured record per request (with request ID,
	// status and latency). Nil discards records; request IDs are still
	// assigned and echoed in X-Request-ID.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.LedgerSize <= 0 {
		c.LedgerSize = 64
	}
	if c.FrameRing <= 0 {
		c.FrameRing = 256
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = discardLogger()
	}
	return c
}

// Server is the evaluation service. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	cache   *LRU
	flight  flightGroup
	pool    *Pool
	metrics *Metrics
	ledger  *Ledger
	mux     *http.ServeMux
	// replayPool recycles simulator arenas across batched sweep cells and
	// across requests (replay.Pool is concurrency-safe; zero value ready).
	replayPool replay.Pool
}

// New builds a Server with its routes mounted.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	s.cache = NewLRU(s.cfg.CacheSize)
	s.pool = NewPool(s.cfg.Workers, s.cfg.QueueDepth)
	s.ledger = NewLedger(s.cfg.LedgerSize)

	s.metrics.GaugeFunc("cholserved_cache_entries", "Entries resident in the result cache.",
		func() float64 { return float64(s.cache.Len()) })
	s.metrics.GaugeFunc("cholserved_ledger_runs", "Evaluations resident in the run ledger.",
		func() float64 { return float64(s.ledger.Len()) })
	s.metrics.GaugeFunc("cholserved_queue_depth", "Admitted requests waiting for a worker slot.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	s.metrics.GaugeFunc("cholserved_active_workers", "Evaluations currently holding a worker slot.",
		func() float64 { return float64(s.pool.Active()) })

	s.mux.HandleFunc("POST /v1/bounds", s.instrument("/v1/bounds", s.handleBounds))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/optimize", s.instrument("/v1/optimize", s.handleOptimize))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/experiments", s.instrument("/v1/experiments", s.handleExperimentList))
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.instrument("/v1/experiments/{id}", s.handleExperiment))
	s.mux.HandleFunc("GET /v1/platforms", s.instrument("/v1/platforms", s.handlePlatforms))
	s.mux.HandleFunc("GET /v1/schedulers", s.instrument("/v1/schedulers", s.handleSchedulers))
	s.mux.HandleFunc("GET /v1/runs", s.instrument("/v1/runs", s.handleRunList))
	s.mux.HandleFunc("GET /v1/runs/{id}", s.instrument("/v1/runs/{id}", s.handleRun))
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.instrument("/v1/runs/{id}/trace", s.handleRunTrace))
	s.mux.HandleFunc("GET /v1/runs/{id}/live", s.instrumentStream("/v1/runs/{id}/live", s.handleRunLive))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.Render(w)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the mounted routes wrapped in the request-logging
// middleware (request IDs + one slog record per request).
func (s *Server) Handler() http.Handler { return withLogging(s.cfg.Logger, s.mux) }

// Ledger exposes the run ledger (tests assert entries directly).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Metrics exposes the registry (tests scrape it directly).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the result cache (tests assert hit/miss behaviour).
func (s *Server) Cache() *LRU { return s.cache }

// ---------------------------------------------------------------------------
// Instrumentation and error plumbing

type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer's Flusher
// through the instrumentation wrappers (the SSE live stream flushes per
// event).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the per-request timeout, the latency
// histogram, and the request counter.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		s.metrics.Observe("cholserved_request_seconds",
			"Wall-clock request latency by endpoint.",
			Labels{"endpoint": endpoint}, DefBuckets, time.Since(start).Seconds())
		s.metrics.CounterAdd("cholserved_requests_total",
			"Requests served, by endpoint and status code.",
			Labels{"endpoint": endpoint, "code": strconv.Itoa(sw.status)}, 1)
	}
}

// observePhase feeds one completed obs.Span into the per-phase wall-clock
// histogram (the obs.SpanObserver the service installs everywhere).
func (s *Server) observePhase(phase string, seconds float64) {
	s.metrics.Observe("cholserved_phase_seconds",
		"Wall-clock time spent per evaluation phase.",
		Labels{"phase": phase}, DefBuckets, seconds)
}

// frameSink returns the probe sink for one ledgered run: every frame is
// counted by source and published into the run's ring, which fans it out to
// live SSE subscribers.
func (s *Server) frameSink(ring *obs.FrameRing) func(obs.Frame) {
	return func(f obs.Frame) {
		s.metrics.CounterAdd("cholserved_probe_frames_total",
			"Live progress frames published, by source.",
			Labels{"source": f.Source}, 1)
		ring.Publish(f)
	}
}

type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func badRequest(err error) error { return &apiError{status: http.StatusBadRequest, err: err} }

// writeErr maps an error to its HTTP status and emits the JSON error body.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		status = ae.status
	case errors.Is(err, ErrQueueFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any, cacheHit bool) {
	w.Header().Set("Content-Type", "application/json")
	if cacheHit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	json.NewEncoder(w).Encode(v)
}

// cached serves key from the LRU or computes it under a worker slot with
// singleflight deduplication, storing successful results.
func (s *Server) cached(ctx context.Context, endpoint, key string, compute func() (any, error)) (any, bool, error) {
	if v, ok := s.cache.Get(key); ok {
		s.metrics.CounterAdd("cholserved_cache_hits_total",
			"Requests served from the result cache.", Labels{"endpoint": endpoint}, 1)
		return v, true, nil
	}
	s.metrics.CounterAdd("cholserved_cache_misses_total",
		"Requests that had to compute their result.", Labels{"endpoint": endpoint}, 1)
	var val any
	err := s.pool.Do(ctx, func() error {
		v, _, ferr := s.flight.Do(ctx, key, compute)
		if ferr != nil {
			return ferr
		}
		s.cache.Put(key, v)
		val = v
		return nil
	})
	return val, false, err
}

func decode[T any](r *http.Request) (T, error) {
	var req T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, badRequest(fmt.Errorf("service: bad request body: %w", err))
	}
	return req, nil
}

// ---------------------------------------------------------------------------
// /v1/bounds

// BoundsRequest asks for the paper's four makespan bounds of a tiled
// Cholesky on a registered platform.
type BoundsRequest struct {
	Platform string `json:"platform"`
	Tiles    int    `json:"tiles"`
}

// BoundValue is one bound in both views (lower bound on time, upper bound
// on performance).
type BoundValue struct {
	MakespanSec float64 `json:"makespan_sec"`
	GFlops      float64 `json:"gflops"`
}

// BoundsResponse carries the four Figure-2 bounds.
type BoundsResponse struct {
	Platform     string                `json:"platform"`
	Tiles        int                   `json:"tiles"`
	MatrixSize   int                   `json:"matrix_size"`
	Bounds       map[string]BoundValue `json:"bounds"`
	BestMakespan float64               `json:"best_makespan_sec"`
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	req, err := decode[BoundsRequest](r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Tiles < 1 || req.Tiles > 256 {
		writeErr(w, badRequest(fmt.Errorf("service: tiles must be in [1, 256], got %d", req.Tiles)))
		return
	}
	p, err := core.NewPlatform(req.Platform)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	key := requestKey("bounds", platformFingerprint(p), strconv.Itoa(req.Tiles))
	v, hit, err := s.cached(r.Context(), "/v1/bounds", key, func() (any, error) {
		all, err := core.BoundsFor(req.Tiles, p)
		if err != nil {
			return nil, err
		}
		fl, _ := core.FlopsByAlgorithm("cholesky", req.Tiles*platform.TileNB)
		mk := func(b bounds.Result) BoundValue {
			return BoundValue{MakespanSec: b.MakespanSec, GFlops: b.GFlops(fl)}
		}
		return &BoundsResponse{
			Platform:   req.Platform,
			Tiles:      req.Tiles,
			MatrixSize: req.Tiles * platform.TileNB,
			Bounds: map[string]BoundValue{
				"critical_path": mk(all.CriticalPath),
				"area":          mk(all.Area),
				"mixed":         mk(all.Mixed),
				"gemm_peak":     mk(all.GemmPeak),
			},
			BestMakespan: all.Best(),
		}, nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, v, hit)
}

// ---------------------------------------------------------------------------
// /v1/simulate

// SimulateRequest asks for one simulated execution of a factorization DAG
// on a registered platform under a registered scheduler.
type SimulateRequest struct {
	Platform  string `json:"platform"`
	Scheduler string `json:"scheduler"`
	Algorithm string `json:"algorithm,omitempty"` // cholesky (default) | lu | qr
	Tiles     int    `json:"tiles"`
	Seed      int64  `json:"seed,omitempty"`
	// NB is the tile size in elements (0 = the platform's reference size);
	// a different size rescales the model, cholesky only. NBSplit, when
	// non-empty, is a cholsim-style "F@K" spec building a HeSP mixed-tile
	// DAG: from coarse panel K on, trailing tiles split F× per side.
	NB           int    `json:"nb,omitempty"`
	NBSplit      string `json:"nb_split,omitempty"`
	Overhead     bool   `json:"overhead,omitempty"`
	WorkStealing bool   `json:"work_stealing,omitempty"`
	// Record attaches the obs event recorder: the run's scheduling decisions
	// (with every candidate's completion-time terms), transfers, evictions
	// and idle intervals become inspectable through /v1/runs/{id}. Recording
	// never changes the schedule.
	Record bool `json:"record,omitempty"`
}

// SimulateResponse summarizes the run against the mixed bound.
type SimulateResponse struct {
	Platform      string  `json:"platform"`
	Scheduler     string  `json:"scheduler"`
	Algorithm     string  `json:"algorithm"`
	Tiles         int     `json:"tiles"`
	MatrixSize    int     `json:"matrix_size"`
	MakespanSec   float64 `json:"makespan_sec"`
	GFlops        float64 `json:"gflops"`
	BoundGFlops   float64 `json:"bound_gflops"`
	Efficiency    float64 `json:"efficiency"`
	TransferSec   float64 `json:"transfer_sec"`
	TransferCount int     `json:"transfer_count"`
	Evictions     int     `json:"evictions"`
	Writebacks    int     `json:"writebacks"`
	StallSec      float64 `json:"stall_sec"`
	// RunID names the ledger entry of the evaluation that produced this
	// response. Cache hits replay the ID assigned when the run was computed;
	// the entry itself may have aged out of the bounded ledger by then.
	RunID string `json:"run_id,omitempty"`
}

func (r SimulateRequest) normalize() (SimulateRequest, error) {
	if r.Algorithm == "" {
		r.Algorithm = "cholesky"
	}
	if r.Tiles < 1 || r.Tiles > 128 {
		return r, fmt.Errorf("service: tiles must be in [1, 128], got %d", r.Tiles)
	}
	if r.Scheduler == "" {
		return r, fmt.Errorf("service: scheduler is required")
	}
	if r.NB < 0 {
		return r, fmt.Errorf("service: nb must be non-negative, got %d", r.NB)
	}
	if (r.NB != 0 || r.NBSplit != "") && r.Algorithm != "cholesky" {
		return r, fmt.Errorf("service: nb/nb_split apply to algorithm cholesky only, got %q", r.Algorithm)
	}
	if r.NBSplit != "" {
		if _, err := cliflags.ParseSplit(r.NBSplit); err != nil {
			return r, fmt.Errorf("service: bad nb_split: %w", err)
		}
	}
	return r, nil
}

func (r SimulateRequest) key(fp string) string {
	return requestKey("simulate", fp, r.Scheduler, r.Algorithm,
		strconv.Itoa(r.Tiles), strconv.FormatInt(r.Seed, 10),
		strconv.Itoa(r.NB), r.NBSplit,
		strconv.FormatBool(r.Overhead), strconv.FormatBool(r.WorkStealing),
		strconv.FormatBool(r.Record))
}

// simulateOnce resolves and runs one simulation request (the shared compute
// path of /v1/simulate and /v1/sweep cells).
func (s *Server) simulateOnce(ctx context.Context, req SimulateRequest, p *platform.Platform) (*SimulateResponse, error) {
	prep := obs.StartSpan(obs.PhasePrep, s.observePhase)
	sch, err := core.NewScheduler(req.Scheduler)
	if err != nil {
		return nil, badRequest(err)
	}
	nb := req.NB
	if nb == 0 {
		nb = p.DefaultNB()
	}
	if nb != p.DefaultNB() {
		p = autotune.ScalePlatform(p, p.DefaultNB(), nb)
	}
	var d *graph.DAG
	if req.NBSplit != "" {
		sp, err := cliflags.ParseSplit(req.NBSplit)
		if err != nil {
			return nil, badRequest(err)
		}
		if err := sp.Check(req.Tiles, nb); err != nil {
			return nil, badRequest(err)
		}
		p.Model = platform.ModelScaled // price the fine tiles by scaling
		d = graph.CholeskySplit(req.Tiles, sp.FromK, sp.Factor, nb)
	} else if d, err = core.DAGByAlgorithm(req.Algorithm, req.Tiles); err != nil {
		return nil, badRequest(err)
	}
	if err := p.Validate(d.Kinds()); err != nil {
		return nil, badRequest(fmt.Errorf("service: platform %q cannot run %s: %w", req.Platform, req.Algorithm, err))
	}
	fl, err := core.FlopsByAlgorithm(req.Algorithm, req.Tiles*nb)
	if err != nil {
		return nil, badRequest(err)
	}
	var rec *obs.Recorder
	if req.Record {
		rec = obs.NewRecorder()
	}
	prep.End()

	// Open the ledger entry before running so a live stream can attach to
	// the evaluation in flight; the probe publishes progress frames into the
	// entry's ring at the event loop's bounded cadence.
	ring := obs.NewFrameRing(s.cfg.FrameRing)
	runID := s.ledger.Open(&RunEntry{
		Kind:      KindSimulate,
		CreatedAt: time.Now(),
		Request:   req,
		Recorder:  rec,
		Frames:    ring,
	})
	probe := obs.NewProbe(0, s.frameSink(ring))
	rep, err := core.SimulateDAGObserved(ctx, d, fl, p, sch, simulator.Options{
		Seed: req.Seed, Overhead: req.Overhead, WorkStealing: req.WorkStealing,
		Recorder: rec, Probe: probe,
	}, s.observePhase)
	if err != nil {
		s.ledger.Fail(runID, err)
		return nil, err
	}
	if rec != nil {
		// Sorted iteration keeps the /metrics series order deterministic
		// across runs (map ranging would register label sets in random
		// first-seen order).
		for _, ec := range rec.EventCountsSorted() {
			s.metrics.CounterAdd("cholserved_sim_events_total",
				"Simulator events captured by the obs recorder, by type.",
				Labels{"type": ec.Type}, float64(ec.Count))
		}
		for _, dec := range rec.Decisions {
			s.metrics.Observe("cholserved_decision_depth",
				"Candidate workers weighed per scheduling decision.",
				nil, DepthBuckets, float64(dec.CandLen))
		}
	}
	resp := &SimulateResponse{
		Platform:      req.Platform,
		Scheduler:     rep.Scheduler,
		Algorithm:     req.Algorithm,
		Tiles:         req.Tiles,
		MatrixSize:    req.Tiles * nb,
		MakespanSec:   rep.MakespanSec,
		GFlops:        rep.GFlops,
		BoundGFlops:   rep.BoundGFlops,
		Efficiency:    rep.Efficiency,
		TransferSec:   rep.Result.TransferSec,
		TransferCount: rep.Result.TransferCount,
		Evictions:     rep.Result.Evictions,
		Writebacks:    rep.Result.Writebacks,
		StallSec:      rep.Result.StallSec,
	}
	resp.RunID = runID
	s.ledger.Complete(runID, func(e *RunEntry) {
		e.Response = resp
		e.Result = rep.Result
	})
	return resp, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decode[SimulateRequest](r)
	if err != nil {
		writeErr(w, err)
		return
	}
	req, err = req.normalize()
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	p, err := core.NewPlatform(req.Platform)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	v, hit, err := s.cached(r.Context(), "/v1/simulate", req.key(platformFingerprint(p)), func() (any, error) {
		return s.simulateOnce(r.Context(), req, p)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, v, hit)
}

// ---------------------------------------------------------------------------
// /v1/optimize

// OptimizeRequest asks the CP branch-and-bound for a near-optimal static
// schedule of a factorization DAG on a registered platform — the service
// view of the paper's CP experiment.
type OptimizeRequest struct {
	Platform  string `json:"platform"`
	Algorithm string `json:"algorithm,omitempty"` // cholesky (default) | lu | qr
	Tiles     int    `json:"tiles"`
	// NodeBudget caps the branch-and-bound expansion (default 50000; the
	// service clamps requests above 2000000 so one call cannot monopolize a
	// worker slot for the whole request timeout).
	NodeBudget int `json:"node_budget,omitempty"`
	// Workers is the number of goroutines exploring the search tree (default
	// 1, capped at 16). The search is deterministic: every Workers value
	// returns the bit-identical Result, so Workers only buys wall-clock.
	Workers int `json:"workers,omitempty"`
}

// OptimizeResponse reports the best static schedule found within the budget.
type OptimizeResponse struct {
	Platform    string  `json:"platform"`
	Algorithm   string  `json:"algorithm"`
	Tiles       int     `json:"tiles"`
	MatrixSize  int     `json:"matrix_size"`
	MakespanSec float64 `json:"makespan_sec"`
	GFlops      float64 `json:"gflops"`
	// Nodes is the number of search-tree nodes expanded; Exhausted reports
	// whether the search proved optimality (explored or pruned the whole
	// space) rather than stopping at the budget.
	Nodes     int  `json:"nodes"`
	Exhausted bool `json:"exhausted"`
	// RunID names the ledger entry of the search that produced this
	// response; `GET /v1/runs/{id}/live` streams its progress (nodes
	// expanded, incumbent trajectory) while the search runs. Cache hits
	// replay the ID assigned when the search was computed.
	RunID string `json:"run_id,omitempty"`
}

func (r OptimizeRequest) normalize() (OptimizeRequest, error) {
	if r.Algorithm == "" {
		r.Algorithm = "cholesky"
	}
	// The CP search is exponential in the task count; 32 tiles (~6.5k tasks)
	// is already far beyond what a request-scoped budget explores usefully.
	if r.Tiles < 1 || r.Tiles > 32 {
		return r, fmt.Errorf("service: tiles must be in [1, 32], got %d", r.Tiles)
	}
	if r.NodeBudget < 0 {
		return r, fmt.Errorf("service: node_budget must be >= 0, got %d", r.NodeBudget)
	}
	if r.NodeBudget == 0 {
		r.NodeBudget = 50000
	}
	if r.NodeBudget > 2000000 {
		r.NodeBudget = 2000000
	}
	if r.Workers < 0 {
		return r, fmt.Errorf("service: workers must be >= 0, got %d", r.Workers)
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.Workers > 16 {
		r.Workers = 16
	}
	return r, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	req, err := decode[OptimizeRequest](r)
	if err != nil {
		writeErr(w, err)
		return
	}
	req, err = req.normalize()
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	p, err := core.NewPlatform(req.Platform)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	// Workers is deliberately NOT part of the cache key: the search result is
	// bit-identical for every worker count (a determinism property pinned by
	// the cpsolve and core test suites), so a hit computed at workers=1 is
	// exactly the answer a workers=8 request would have produced.
	key := requestKey("optimize", platformFingerprint(p), req.Algorithm,
		strconv.Itoa(req.Tiles), strconv.Itoa(req.NodeBudget))
	v, hit, err := s.cached(r.Context(), "/v1/optimize", key, func() (any, error) {
		d, err := core.DAGByAlgorithm(req.Algorithm, req.Tiles)
		if err != nil {
			return nil, badRequest(err)
		}
		if err := p.Validate(d.Kinds()); err != nil {
			return nil, badRequest(fmt.Errorf("service: platform %q cannot run %s: %w", req.Platform, req.Algorithm, err))
		}
		fl, err := core.FlopsByAlgorithm(req.Algorithm, req.Tiles*platform.TileNB)
		if err != nil {
			return nil, badRequest(err)
		}
		ring := obs.NewFrameRing(s.cfg.FrameRing)
		runID := s.ledger.Open(&RunEntry{
			Kind:      KindOptimize,
			CreatedAt: time.Now(),
			Request:   SimulateRequest{Platform: req.Platform, Algorithm: req.Algorithm, Tiles: req.Tiles},
			Frames:    ring,
		})
		span := obs.StartSpan(obs.PhaseSolve, s.observePhase)
		res, err := core.OptimizeDAGProbed(r.Context(), d, p, req.NodeBudget, req.Workers,
			obs.NewProbe(0, s.frameSink(ring)))
		span.End()
		if err != nil {
			s.ledger.Fail(runID, err)
			return nil, err
		}
		resp := &OptimizeResponse{
			Platform:    req.Platform,
			Algorithm:   req.Algorithm,
			Tiles:       req.Tiles,
			MatrixSize:  req.Tiles * platform.TileNB,
			MakespanSec: res.Makespan,
			GFlops:      platform.GFlops(fl, res.Makespan),
			Nodes:       res.Nodes,
			Exhausted:   res.Exhausted,
			RunID:       runID,
		}
		s.ledger.Complete(runID, func(e *RunEntry) { e.Optimize = resp })
		return resp, nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, v, hit)
}

// ---------------------------------------------------------------------------
// /v1/sweep

// SweepRequest evaluates the cross product tiles × schedulers in one call —
// the "various matrix sizes or schedulers" workflow the paper runs in
// parallel. Cells share the /v1/simulate cache, so a sweep both benefits
// from and warms the per-simulation entries.
type SweepRequest struct {
	Platform   string   `json:"platform"`
	Schedulers []string `json:"schedulers"`
	Tiles      []int    `json:"tiles"`
	Algorithm  string   `json:"algorithm,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	// Batch routes the sweep's cache misses through the batched replay
	// engine: cells sharing a tile count share one simulator preparation and
	// one mixed-bound solve, and per-run simulator state is recycled from a
	// server-wide arena pool. Cell responses are bit-identical to the
	// serial path (modulo run_id) — purely a throughput knob.
	Batch bool `json:"batch,omitempty"`
}

// SweepResponse is the row-major result grid: Results[i][j] is tiles[i]
// under schedulers[j].
type SweepResponse struct {
	Platform   string                `json:"platform"`
	Schedulers []string              `json:"schedulers"`
	Tiles      []int                 `json:"tiles"`
	Results    [][]*SimulateResponse `json:"results"`
	// RunID names the batch's own ledger entry (batched sweeps only):
	// `GET /v1/runs/{id}/live` streams the batch's progress — completed
	// cells and dedup hits — while the sweep runs.
	RunID string `json:"run_id,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, err := decode[SweepRequest](r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Schedulers) == 0 || len(req.Tiles) == 0 {
		writeErr(w, badRequest(fmt.Errorf("service: sweep needs at least one scheduler and one tile count")))
		return
	}
	if len(req.Schedulers)*len(req.Tiles) > 1024 {
		writeErr(w, badRequest(fmt.Errorf("service: sweep of %d cells exceeds the 1024-cell limit",
			len(req.Schedulers)*len(req.Tiles))))
		return
	}
	p, err := core.NewPlatform(req.Platform)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	fp := platformFingerprint(p)

	type cell struct{ ti, si int }
	var cells []cell
	for ti := range req.Tiles {
		for si := range req.Schedulers {
			cells = append(cells, cell{ti, si})
		}
	}
	ctx := r.Context()
	// The sweep holds one admission slot and fans its cells out over the
	// worker budget; each cell goes through the cache and singleflight like
	// a standalone /v1/simulate.
	var flat []*SimulateResponse
	var batchRunID string
	err = s.pool.Do(ctx, func() error {
		span := obs.StartSpan(obs.PhaseSweep, s.observePhase)
		defer span.End()
		if req.Batch {
			var berr error
			flat, batchRunID, berr = s.sweepBatched(ctx, req, p, fp)
			return berr
		}
		var ferr error
		flat, ferr = sweep.MapContext(ctx, cells, s.cfg.Workers, func(c cell) (*SimulateResponse, error) {
			cr := SimulateRequest{
				Platform: req.Platform, Scheduler: req.Schedulers[c.si],
				Algorithm: req.Algorithm, Tiles: req.Tiles[c.ti], Seed: req.Seed,
			}
			cr, err := cr.normalize()
			if err != nil {
				return nil, badRequest(err)
			}
			key := cr.key(fp)
			if v, ok := s.cache.Get(key); ok {
				s.metrics.CounterAdd("cholserved_cache_hits_total",
					"Requests served from the result cache.", Labels{"endpoint": "/v1/sweep"}, 1)
				return v.(*SimulateResponse), nil
			}
			s.metrics.CounterAdd("cholserved_cache_misses_total",
				"Requests that had to compute their result.", Labels{"endpoint": "/v1/sweep"}, 1)
			v, _, err := s.flight.Do(ctx, key, func() (any, error) {
				return s.simulateOnce(ctx, cr, p)
			})
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, v)
			return v.(*SimulateResponse), nil
		})
		return ferr
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := &SweepResponse{Platform: req.Platform, Schedulers: req.Schedulers, Tiles: req.Tiles, RunID: batchRunID}
	resp.Results = make([][]*SimulateResponse, len(req.Tiles))
	for i := range resp.Results {
		resp.Results[i] = flat[i*len(req.Schedulers) : (i+1)*len(req.Schedulers)]
	}
	writeJSON(w, resp, false)
}

// sweepBatched computes a sweep's cache misses through the batched replay
// engine: cells sharing a tile count share one simulator preparation, DAG
// and mixed-bound solve, and per-run simulator state is recycled from the
// server's arena pool. Each cell's response is bit-identical to what the
// serial path would produce (modulo run_id) — the internal/replay
// equivalence suite enforces the contract. Singleflight is deliberately
// skipped on this path: the batch already deduplicates within the request,
// and a concurrent identical sweep racing past the cache at worst recomputes
// a cell; it cannot produce a different answer.
func (s *Server) sweepBatched(ctx context.Context, req SweepRequest, p *platform.Platform, fp string) ([]*SimulateResponse, string, error) {
	// Resolve every scheduler name up front — replay.Job factories cannot
	// return errors, and a bad name should fail the whole request as 400.
	insts := make([]sched.Scheduler, len(req.Schedulers))
	for i, name := range req.Schedulers {
		inst, err := core.NewScheduler(name)
		if err != nil {
			return nil, "", badRequest(err)
		}
		insts[i] = inst
	}
	nCols := len(req.Schedulers)
	flat := make([]*SimulateResponse, len(req.Tiles)*nCols)

	// One group per distinct tile count: the DAG, flop total and mixed bound
	// are shared by all that tile count's cells instead of recomputed per cell.
	type group struct {
		d     *graph.DAG
		flops float64
		bound float64 // mixed-bound GFLOP/s ceiling
		nb    int
	}
	groups := make(map[int]*group)
	type miss struct {
		idx  int // position in flat
		creq SimulateRequest
		key  string
		g    *group
		si   int
	}
	var misses []miss
	for ti, tiles := range req.Tiles {
		for si := range req.Schedulers {
			cr := SimulateRequest{
				Platform: req.Platform, Scheduler: req.Schedulers[si],
				Algorithm: req.Algorithm, Tiles: tiles, Seed: req.Seed,
			}
			cr, err := cr.normalize()
			if err != nil {
				return nil, "", badRequest(err)
			}
			key := cr.key(fp)
			if v, ok := s.cache.Get(key); ok {
				s.metrics.CounterAdd("cholserved_cache_hits_total",
					"Requests served from the result cache.", Labels{"endpoint": "/v1/sweep"}, 1)
				flat[ti*nCols+si] = v.(*SimulateResponse)
				continue
			}
			s.metrics.CounterAdd("cholserved_cache_misses_total",
				"Requests that had to compute their result.", Labels{"endpoint": "/v1/sweep"}, 1)
			g, ok := groups[tiles]
			if !ok {
				d, err := core.DAGByAlgorithm(cr.Algorithm, tiles)
				if err != nil {
					return nil, "", badRequest(err)
				}
				if err := p.Validate(d.Kinds()); err != nil {
					return nil, "", badRequest(fmt.Errorf("service: platform %q cannot run %s: %w", req.Platform, cr.Algorithm, err))
				}
				nb := p.DefaultNB()
				fl, err := core.FlopsByAlgorithm(cr.Algorithm, tiles*nb)
				if err != nil {
					return nil, "", badRequest(err)
				}
				m, err := bounds.MixedInt(d, p)
				if err != nil {
					return nil, "", err
				}
				g = &group{d: d, flops: fl, bound: m.GFlops(fl), nb: nb}
				groups[tiles] = g
			}
			misses = append(misses, miss{idx: ti*nCols + si, creq: cr, key: key, g: g, si: si})
		}
	}
	jobs := make([]replay.Job, len(misses))
	for i, m := range misses {
		name := req.Schedulers[m.si]
		jobs[i] = replay.Job{
			D: m.g.d, P: p,
			Sched: func() sched.Scheduler { inst, _ := core.NewScheduler(name); return inst },
			Opt:   simulator.Options{Seed: m.creq.Seed},
		}
	}
	// The batch gets its own ledger entry: one live stream for the whole
	// sweep (completed cells, dedup hits), opened before the replay engine
	// runs so subscribers can watch it in flight.
	ring := obs.NewFrameRing(s.cfg.FrameRing)
	runID := s.ledger.Open(&RunEntry{
		Kind:      KindSweep,
		CreatedAt: time.Now(),
		Request:   SimulateRequest{Platform: req.Platform, Algorithm: req.Algorithm, Seed: req.Seed},
		Frames:    ring,
	})
	rs, err := replay.RunProbed(ctx, jobs, s.cfg.Workers, &s.replayPool, obs.NewProbe(1, s.frameSink(ring)))
	if err != nil {
		s.ledger.Fail(runID, err)
		return nil, "", err
	}
	for i, m := range misses {
		r := rs[i]
		if err := simulator.Validate(m.g.d, p, r); err != nil {
			s.ledger.Fail(runID, fmt.Errorf("core: simulator produced an invalid schedule: %w", err))
			return nil, "", fmt.Errorf("core: simulator produced an invalid schedule: %w", err)
		}
		gf := r.GFlops(m.g.flops)
		resp := &SimulateResponse{
			Platform:      req.Platform,
			Scheduler:     insts[m.si].Name(),
			Algorithm:     m.creq.Algorithm,
			Tiles:         m.creq.Tiles,
			MatrixSize:    m.creq.Tiles * m.g.nb,
			MakespanSec:   r.MakespanSec,
			GFlops:        gf,
			BoundGFlops:   m.g.bound,
			TransferSec:   r.TransferSec,
			TransferCount: r.TransferCount,
			Evictions:     r.Evictions,
			Writebacks:    r.Writebacks,
			StallSec:      r.StallSec,
		}
		if resp.BoundGFlops > 0 {
			resp.Efficiency = gf / resp.BoundGFlops
		}
		resp.RunID = s.ledger.Add(&RunEntry{
			CreatedAt: time.Now(),
			Request:   m.creq,
			Response:  resp,
			Result:    r,
		})
		s.cache.Put(m.key, resp)
		flat[m.idx] = resp
	}
	s.ledger.Complete(runID, nil)
	return flat, runID, nil
}

// ---------------------------------------------------------------------------
// /v1/experiments

// ExperimentInfo is one catalogue entry.
type ExperimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	var list []ExperimentInfo
	for _, e := range experiments.Registry() {
		list = append(list, ExperimentInfo{ID: e.ID, Description: e.Description})
	}
	writeJSON(w, list, false)
}

// ExperimentResponse is one regenerated paper artifact.
type ExperimentResponse struct {
	ID     string `json:"id"`
	Output string `json:"output"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	cfg := experiments.Quick()
	if q.Get("full") == "1" {
		cfg = experiments.Default()
	}
	if v := q.Get("sizes"); v != "" {
		cfg.Sizes = nil
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				writeErr(w, badRequest(fmt.Errorf("service: bad sizes entry %q", part)))
				return
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}
	if v := q.Get("runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, badRequest(fmt.Errorf("service: bad runs %q", v)))
			return
		}
		cfg.Runs = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeErr(w, badRequest(fmt.Errorf("service: bad seed %q", v)))
			return
		}
		cfg.Seed = n
	}
	key := requestKey("experiment", id, q.Get("full"), q.Get("sizes"),
		strconv.Itoa(cfg.Runs), strconv.FormatInt(cfg.Seed, 10))
	v, hit, err := s.cached(r.Context(), "/v1/experiments/{id}", key, func() (any, error) {
		text, err := core.RunExperiment(r.Context(), id, cfg)
		if err != nil {
			if strings.Contains(err.Error(), "unknown experiment") {
				return nil, badRequest(err)
			}
			return nil, err
		}
		return &ExperimentResponse{ID: id, Output: text}, nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, v, hit)
}

// ---------------------------------------------------------------------------
// Registry catalogues

// RegistryEntry is one platform or scheduler constructor as exposed over
// the API.
type RegistryEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	var list []RegistryEntry
	for _, e := range core.Platforms() {
		list = append(list, RegistryEntry{Name: e.Display(), Description: e.Description})
	}
	writeJSON(w, list, false)
}

func (s *Server) handleSchedulers(w http.ResponseWriter, r *http.Request) {
	var list []RegistryEntry
	for _, e := range core.Schedulers() {
		list = append(list, RegistryEntry{Name: e.Display(), Description: e.Description})
	}
	writeJSON(w, list, false)
}
