// Package analysistest runs a chollint analyzer over a testdata package and
// checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools analysistest convention:
//
//	for k := range m { // want `range over map`
//
// Each string after `want` (Go-quoted or backquoted) is a regexp that must
// match exactly one diagnostic on that line; diagnostics and expectations
// must match one-to-one.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads ./testdata/src/<pkgRel> (relative to the calling test's
// directory) and applies the analyzer, reporting unmet expectations and
// unexpected diagnostics through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgRel string) {
	t.Helper()
	RunProgram(t, a, pkgRel)
}

// RunProgram loads every listed ./testdata/src/<pkgRel> package as ONE
// whole program — interface dispatch, marker claims and call chains resolve
// across the package boundaries — applies the analyzer to all of it, and
// checks the union of diagnostics against the union of `// want`
// expectations. The interprocedural analyzers (puremark, hotcall) need this
// to exercise cross-package fixtures; single-package callers get the same
// behavior as Run.
func RunProgram(t *testing.T, a *analysis.Analyzer, pkgRels ...string) {
	t.Helper()
	if len(pkgRels) == 0 {
		t.Fatal("RunProgram: no fixture packages given")
	}
	patterns := make([]string, len(pkgRels))
	for i, rel := range pkgRels {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("testdata", "src", rel))
	}
	pkgs, err := load.Packages(patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) != len(patterns) {
		t.Fatalf("loading %v: got %d packages, want %d", patterns, len(pkgs), len(patterns))
	}

	units := make([]*analysis.PackageUnit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = &analysis.PackageUnit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	}
	prog := analysis.NewProgram(pkgs[0].Fset, units)
	diags, err := analysis.RunProgram([]*analysis.Analyzer{a}, prog)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := map[posKey][]*want{}
	for _, pkg := range pkgs {
		collectWants(t, pkg, wants)
	}
	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		if !consumeWant(wants[key], d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *load.Package, out map[posKey][]*want) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, pat := range parseWantPatterns(c.Text[idx+len("want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", key.file, key.line, pat, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
}

// parseWantPatterns extracts the quoted/backquoted regexps after "want".
func parseWantPatterns(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes, then Unquote.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return out
			}
			q, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return out
			}
			out = append(out, q)
			s = s[end+1:]
		default:
			return out
		}
	}
	return out
}

// Fprint is a debugging helper: the rendered diagnostics of one run.
func Fprint(diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&sb, d)
	}
	return sb.String()
}
