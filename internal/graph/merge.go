package graph

// Merge composes independent DAGs into one (a batched workload: several
// factorizations in flight at once, as dense solvers do for block-diagonal
// systems or multiple right-hand sides). Task IDs are renumbered densely;
// tile coordinates are offset per input so footprints never collide, which
// keeps the simulator's data-transfer model faithful. No cross-DAG edges
// are added — the scheduler is free to interleave.
func Merge(dags ...*DAG) *DAG {
	out := &DAG{Algorithm: "batch"}
	tileStride := 0
	for _, d := range dags {
		if d.P > tileStride {
			tileStride = d.P
		}
	}
	tileStride++ // tile rows of batch i live in [i·stride, i·stride + P)
	for bi, d := range dags {
		base := len(out.Tasks)
		off := bi * tileStride
		for _, t := range d.Tasks {
			nt := &Task{
				ID:   base + t.ID,
				Kind: t.Kind,
				I:    t.I, J: t.J, K: t.K,
			}
			for _, ref := range t.Footprint {
				j := ref.J
				if j >= 0 {
					j += off
				}
				nt.Footprint = append(nt.Footprint, TileRef{I: ref.I + off, J: j, Mode: ref.Mode})
			}
			for _, p := range t.Pred {
				nt.Pred = append(nt.Pred, base+p)
			}
			for _, s := range t.Succ {
				nt.Succ = append(nt.Succ, base+s)
			}
			out.Tasks = append(out.Tasks, nt)
		}
		if d.P > out.P {
			out.P = d.P
		}
	}
	return out
}
