package analysis

import (
	"go/types"
	"strings"
)

// Effects is the per-function effect summary the interprocedural engine
// computes bottom-up over the call graph (callgraph.go). Each bit is an
// over-approximation: a set bit means the function *may* have the behavior on
// some path, a clear bit is a proof that it cannot. The three interprocedural
// analyzers (puremark, hotcall, leakguard) are phrased as "this bit must be
// clear on every function reachable from here".
type Effects uint32

const (
	// EffAllocates: the function may allocate per call (make, new, closure
	// and composite literals, string conversions, fmt).
	EffAllocates Effects = 1 << iota
	// EffReadsClock: reads wall-clock time (time.Now and friends).
	EffReadsClock
	// EffReadsRand: draws from a random source (math/rand, math/rand/v2 —
	// package-level or *rand.Rand methods). In this codebase every RNG is
	// seeded from Options.Seed, so EffReadsRand is exactly "seed-dependent".
	EffReadsRand
	// EffRangesMap: iterates a map in (nondeterministic) range order. Lines
	// excused with //chollint:ordered — the detranged escape asserting an
	// order-insensitive body — do not set the bit.
	EffRangesMap
	// EffMutatesReceiver: writes the receiver's reachable state.
	EffMutatesReceiver
	// EffMutatesArg: writes state reachable from a parameter.
	EffMutatesArg
	// EffMutatesGlobal: writes a package-level variable (or performs I/O).
	EffMutatesGlobal
	// EffReadsGlobal: reads a package-level variable.
	EffReadsGlobal
	// EffSpawnsGoroutine: starts a goroutine.
	EffSpawnsGoroutine
	// EffBlocks: may block on a channel operation or a sync primitive.
	EffBlocks
	// EffUnknown: calls something the engine cannot resolve (a func value of
	// non-contract type, a denylisted external). Analyzers that *prove*
	// properties treat EffUnknown as failure.
	EffUnknown
)

var effNames = [...]struct {
	bit  Effects
	name string
}{
	{EffAllocates, "allocates"},
	{EffReadsClock, "reads-clock"},
	{EffReadsRand, "reads-rand"},
	{EffRangesMap, "ranges-map-nondet"},
	{EffMutatesReceiver, "mutates-receiver"},
	{EffMutatesArg, "mutates-arg"},
	{EffMutatesGlobal, "mutates-global"},
	{EffReadsGlobal, "reads-global"},
	{EffSpawnsGoroutine, "spawns-goroutine"},
	{EffBlocks, "blocks-on-channel"},
	{EffUnknown, "unknown-callee"},
}

func (e Effects) String() string {
	if e == 0 {
		return "none"
	}
	var parts []string
	for _, n := range effNames {
		if e&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// Has reports whether every bit of mask is set.
func (e Effects) Has(mask Effects) bool { return e&mask == mask }

// extSummary is the effect summary of a function whose body the program has
// not loaded (standard library, or a module package outside the analyzed
// pattern set).
type extSummary struct {
	effects Effects
	// paramCalls is a bitmask of 0-based parameter indices the callee may
	// invoke (sort.Search calls its predicate, sync.Once.Do its thunk).
	// Substituted with the caller's actual arguments at the call site.
	paramCalls uint32
}

// extPkgDefaults assigns a whole external package one summary. The table is
// a denylist: packages not listed (and functions without an override below)
// are assumed effect-free. That optimism is deliberate — the impurity
// sources that matter to this codebase's invariants (clocks, RNGs, I/O,
// blocking primitives) are enumerable, while a conservative default would
// drown the analyzers in unprovable stdlib calls. The same rule makes
// partial loads degrade gracefully: a module package outside the loaded
// pattern set contributes no effects, and the whole-program run
// (`chollint ./...`, wired into make lint and CI) supplies the full proof.
var extPkgDefaults = map[string]Effects{
	"time":          EffReadsClock | EffAllocates,
	"math/rand":     EffReadsRand | EffMutatesGlobal | EffMutatesArg | EffAllocates,
	"math/rand/v2":  EffReadsRand | EffMutatesGlobal | EffMutatesArg | EffAllocates,
	"crypto/rand":   EffReadsRand | EffMutatesArg | EffUnknown,
	"os":            EffUnknown,
	"os/exec":       EffUnknown,
	"os/signal":     EffUnknown,
	"io":            EffUnknown,
	"io/fs":         EffUnknown,
	"bufio":         EffUnknown,
	"net":           EffUnknown,
	"net/http":      EffUnknown,
	"syscall":       EffUnknown,
	"runtime":       EffMutatesGlobal,
	"runtime/pprof": EffUnknown,
	"sync":          EffBlocks | EffMutatesArg,
	"sync/atomic":   EffMutatesArg,
	"fmt":           EffAllocates | EffMutatesGlobal | EffUnknown,
	"log":           EffAllocates | EffMutatesGlobal,
	"log/slog":      EffAllocates | EffMutatesGlobal,
}

// extFuncOverrides refines extPkgDefaults for specific functions and
// methods. Keys are "pkgpath.Name" for package-level functions and
// "pkgpath.Type.Name" for methods (pointer receivers included).
var extFuncOverrides = map[string]extSummary{
	// The formatting family allocates but writes nothing.
	"fmt.Sprintf":  {effects: EffAllocates},
	"fmt.Sprint":   {effects: EffAllocates},
	"fmt.Sprintln": {effects: EffAllocates},
	"fmt.Errorf":   {effects: EffAllocates},
	"fmt.Appendf":  {effects: EffAllocates | EffMutatesArg},

	// sort: the comparator/predicate runs on the caller's values; Slice and
	// friends reorder their argument.
	"sort.Search":           {paramCalls: 1 << 1},
	"sort.Find":             {paramCalls: 1 << 1},
	"sort.Slice":            {effects: EffMutatesArg | EffAllocates, paramCalls: 1 << 1},
	"sort.SliceStable":      {effects: EffMutatesArg | EffAllocates, paramCalls: 1 << 1},
	"sort.SliceIsSorted":    {effects: EffAllocates, paramCalls: 1 << 1},
	"sort.Sort":             {effects: EffMutatesArg},
	"sort.Stable":           {effects: EffMutatesArg},
	"sort.Ints":             {effects: EffMutatesArg},
	"sort.Float64s":         {effects: EffMutatesArg},
	"sort.Strings":          {effects: EffMutatesArg},
	"slices.Sort":           {effects: EffMutatesArg},
	"slices.SortFunc":       {effects: EffMutatesArg, paramCalls: 1 << 1},
	"slices.SortStableFunc": {effects: EffMutatesArg, paramCalls: 1 << 1},

	// sync: the blocking/mutating default is right for Lock/Wait/Do; Unlock
	// and the Locker releases never block.
	"sync.Mutex.Unlock":    {effects: EffMutatesArg},
	"sync.RWMutex.Unlock":  {effects: EffMutatesArg},
	"sync.RWMutex.RUnlock": {effects: EffMutatesArg},
	"sync.WaitGroup.Add":   {effects: EffMutatesArg},
	"sync.WaitGroup.Done":  {effects: EffMutatesArg},
	"sync.Once.Do":         {effects: EffBlocks | EffMutatesArg, paramCalls: 1 << 0},
	"sync.Pool.Get":        {effects: EffMutatesArg | EffAllocates},
	"sync.Pool.Put":        {effects: EffMutatesArg},

	// time: reading a timer/ticker channel is a block, constructing reads
	// the clock; the pure arithmetic on Duration carries no effects.
	"time.Duration.Seconds":      {},
	"time.Duration.String":       {effects: EffAllocates},
	"time.Duration.Nanoseconds":  {},
	"time.Duration.Milliseconds": {},

	// context accessors are pure reads (receiving from Done() is the block,
	// and that is scanned at the receive site).
	"context.Background":   {},
	"context.TODO":         {},
	"context.WithCancel":   {effects: EffAllocates},
	"context.WithTimeout":  {effects: EffAllocates | EffReadsClock},
	"context.WithDeadline": {effects: EffAllocates | EffReadsClock},
	"context.Cause":        {},

	// errors: allocation only.
	"errors.New": {effects: EffAllocates},
	"errors.Is":  {},
	"errors.As":  {effects: EffMutatesArg},

	// runtime introspection used by worker-pool sizing is effect-free.
	"runtime.GOMAXPROCS": {},
	"runtime.NumCPU":     {},
}

// extEffectsOf resolves the summary of an external function. fn is non-nil
// and has no body in the loaded program.
func extEffectsOf(fn *types.Func) extSummary {
	pkg := fn.Pkg()
	if pkg == nil {
		return extSummary{} // builtins resolved elsewhere; universe funcs are pure
	}
	path := pkg.Path()
	key := path + "." + fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := namedTypeNameOf(sig.Recv().Type()); tn != "" {
			key = path + "." + tn + "." + fn.Name()
		}
	}
	if s, ok := extFuncOverrides[key]; ok {
		return s
	}
	if eff, ok := extPkgDefaults[path]; ok {
		return extSummary{effects: eff}
	}
	return extSummary{}
}

// namedTypeNameOf returns the bare name of a (possibly pointered) named
// receiver type, or "".
func namedTypeNameOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
