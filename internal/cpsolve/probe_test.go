package cpsolve

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
)

// collectFrames runs one search with a probe attached and returns the
// emitted frame stream plus the result.
func collectFrames(t *testing.T, workers, budget int) ([]obs.Frame, *Result) {
	t.Helper()
	var frames []obs.Frame
	probe := obs.NewProbe(200, func(f obs.Frame) { frames = append(frames, f.Clone()) })
	res, err := Solve(graph.Cholesky(8), platform.Mirage(), Options{
		NodeBudget: budget, Workers: workers, Probe: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return frames, res
}

// TestProbeFramesWorkerInvariant is the telemetry analogue of the solver's
// determinism contract: because frames are emitted only from the sequential
// split/commit points, the entire frame stream — not just the Result — must
// be bit-identical for every Options.Workers value.
func TestProbeFramesWorkerInvariant(t *testing.T) {
	f1, r1 := collectFrames(t, 1, 4000)
	for _, workers := range []int{2, 4, 8} {
		fn, rn := collectFrames(t, workers, 4000)
		if r1.Makespan != rn.Makespan || r1.Nodes != rn.Nodes {
			t.Fatalf("result diverged at workers=%d: %v/%d vs %v/%d",
				workers, rn.Makespan, rn.Nodes, r1.Makespan, r1.Nodes)
		}
		if !reflect.DeepEqual(f1, fn) {
			t.Fatalf("frame stream diverged at workers=%d:\n1: %+v\n%d: %+v", workers, f1, workers, fn)
		}
	}
}

// TestProbeFrameShape pins the cpsolve frame semantics: monotone Done,
// non-increasing incumbent, a Final frame closing the stream, and probing
// leaving the search result untouched.
func TestProbeFrameShape(t *testing.T) {
	plain, err := Solve(graph.Cholesky(8), platform.Mirage(), Options{NodeBudget: 4000})
	if err != nil {
		t.Fatal(err)
	}
	frames, res := collectFrames(t, 1, 4000)
	if res.Makespan != plain.Makespan || res.Nodes != plain.Nodes {
		t.Fatalf("probe changed the search: %v/%d vs %v/%d",
			res.Makespan, res.Nodes, plain.Makespan, plain.Nodes)
	}
	if len(frames) == 0 {
		t.Fatal("no frames emitted")
	}
	for i, f := range frames {
		if f.Source != obs.SourceCPSolve {
			t.Fatalf("frame %d source %q", i, f.Source)
		}
		if f.Nodes != f.Done {
			t.Fatalf("frame %d Nodes %d != Done %d", i, f.Nodes, f.Done)
		}
		if f.CutSubtrees < 0 {
			t.Fatalf("frame %d negative cut counter", i)
		}
		if i == 0 {
			continue
		}
		if f.Done < frames[i-1].Done {
			t.Fatalf("Done regressed at frame %d: %d after %d", i, f.Done, frames[i-1].Done)
		}
		if !math.IsInf(frames[i-1].IncumbentSec, 1) && f.IncumbentSec > frames[i-1].IncumbentSec {
			t.Fatalf("incumbent worsened at frame %d: %v after %v", i, f.IncumbentSec, frames[i-1].IncumbentSec)
		}
	}
	last := frames[len(frames)-1]
	if !last.Final {
		t.Fatal("stream not closed by a Final frame")
	}
	if last.IncumbentSec != res.Makespan {
		t.Fatalf("final incumbent %v != result makespan %v", last.IncumbentSec, res.Makespan)
	}
}
