package matrix

import "fmt"

// Tile is one nb×nb block of a tiled matrix, stored row-major.
type Tile struct {
	NB   int
	Data []float64
}

// NewTile allocates a zero nb×nb tile.
func NewTile(nb int) *Tile { return &Tile{NB: nb, Data: make([]float64, nb*nb)} }

// At returns tile element (i, j).
func (t *Tile) At(i, j int) float64 { return t.Data[i*t.NB+j] }

// Set assigns tile element (i, j).
func (t *Tile) Set(i, j int, v float64) { t.Data[i*t.NB+j] = v }

// Clone returns a deep copy of t.
func (t *Tile) Clone() *Tile {
	c := NewTile(t.NB)
	copy(c.Data, t.Data)
	return c
}

// Tiled is the lower-triangular tiled view of a symmetric matrix, as consumed
// by the tiled Cholesky algorithm (Algorithm 1 of the paper): tiles T[i][j]
// exist for j ≤ i only, each nb×nb, with P×P tiles overall.
//
// The factorization overwrites the tiles with the Cholesky factor, exactly as
// the paper notes ("no extra memory area is needed to store the L tiles").
type Tiled struct {
	P  int // number of tile rows/cols
	NB int // tile dimension
	T  [][]*Tile
}

// NewTiled allocates a zero tiled matrix with p×p tiles of size nb.
func NewTiled(p, nb int) *Tiled {
	t := &Tiled{P: p, NB: nb, T: make([][]*Tile, p)}
	for i := 0; i < p; i++ {
		t.T[i] = make([]*Tile, i+1)
		for j := 0; j <= i; j++ {
			t.T[i][j] = NewTile(nb)
		}
	}
	return t
}

// Tile returns tile (i, j), j ≤ i.
func (t *Tiled) Tile(i, j int) *Tile {
	if j > i {
		panic(fmt.Sprintf("matrix: upper tile (%d,%d) requested from lower-tiled storage", i, j))
	}
	return t.T[i][j]
}

// N returns the full matrix dimension P·NB.
func (t *Tiled) N() int { return t.P * t.NB }

// Clone returns a deep copy.
func (t *Tiled) Clone() *Tiled {
	c := NewTiled(t.P, t.NB)
	for i := 0; i < t.P; i++ {
		for j := 0; j <= i; j++ {
			copy(c.T[i][j].Data, t.T[i][j].Data)
		}
	}
	return c
}

// FromDense tiles the lower triangle of a dense symmetric matrix. The matrix
// dimension must be divisible by nb.
func FromDense(a *Dense, nb int) (*Tiled, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("matrix: tile size %d must be positive", nb)
	}
	if a.N%nb != 0 {
		return nil, fmt.Errorf("matrix: dimension %d not divisible by tile size %d", a.N, nb)
	}
	p := a.N / nb
	t := NewTiled(p, nb)
	for bi := 0; bi < p; bi++ {
		for bj := 0; bj <= bi; bj++ {
			tile := t.T[bi][bj]
			for i := 0; i < nb; i++ {
				row := a.Data[(bi*nb+i)*a.N+bj*nb:]
				copy(tile.Data[i*nb:(i+1)*nb], row[:nb])
			}
		}
	}
	return t, nil
}

// ToDense expands the tiled lower triangle back into a dense matrix. For
// diagonal tiles only the lower triangle is copied (the factorization leaves
// the strict upper part of diagonal tiles untouched); the strict upper
// triangle of the result is zero, i.e. the result is the factor L.
func (t *Tiled) ToDense() *Dense {
	n := t.N()
	a := NewDense(n)
	for bi := 0; bi < t.P; bi++ {
		for bj := 0; bj <= bi; bj++ {
			tile := t.T[bi][bj]
			for i := 0; i < t.NB; i++ {
				jmax := t.NB
				if bi == bj {
					jmax = i + 1
				}
				for j := 0; j < jmax; j++ {
					a.Set(bi*t.NB+i, bj*t.NB+j, tile.At(i, j))
				}
			}
		}
	}
	return a
}

// ToDenseSymmetric expands the tiled lower triangle and mirrors it, returning
// the full symmetric matrix it represents (for residual checks on inputs).
func (t *Tiled) ToDenseSymmetric() *Dense {
	n := t.N()
	a := NewDense(n)
	for bi := 0; bi < t.P; bi++ {
		for bj := 0; bj <= bi; bj++ {
			tile := t.T[bi][bj]
			for i := 0; i < t.NB; i++ {
				for j := 0; j < t.NB; j++ {
					gi, gj := bi*t.NB+i, bj*t.NB+j
					if gj > gi {
						continue
					}
					v := tile.At(i, j)
					a.Set(gi, gj, v)
					a.Set(gj, gi, v)
				}
			}
		}
	}
	return a
}
