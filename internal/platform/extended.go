package platform

import (
	"repro/internal/graph"
	"repro/internal/kernels"
)

// Extended-model GPU speedups for the LU and QR kernels, chosen by analogy
// with Table I (diagonal factorization kernels barely accelerate; regular
// square updates accelerate like GEMM; panel kernels sit in between, like
// TRSM). These parameterize the "other dense factorizations" extension
// named in the paper's conclusion; they are a model, not a measurement.
const (
	SpeedupGETRF = 2.5
	SpeedupGEQRT = 2.0
	SpeedupORMQR = 22.0
	SpeedupTSQRT = 6.0
	SpeedupTSMQR = 27.0
)

// CPU sustained throughputs (GFLOP/s) for the extension kernels, alongside
// the Cholesky ones of the Mirage model. The vector kernels (TRSV, GEMV) are
// memory-bound: low sustained rates, and TRSV is *slower* on the GPU than on
// a core (a latency-bound dependent recurrence) — which is why triangular
// solves classically stay on CPUs.
const (
	cpuGetrfGFlops = 6.0
	cpuGeqrtGFlops = 5.0
	cpuOrmqrGFlops = 9.0
	cpuTsqrtGFlops = 6.5
	cpuTsmqrGFlops = 9.5
	cpuTrsvGFlops  = 2.0
	cpuGemvGFlops  = 4.0
)

// Vector-kernel GPU speedups.
const (
	SpeedupTRSV = 0.5 // GPU 2× slower
	SpeedupGEMV = 5.0
)

// ExtendedCPUKernelTimes returns the Mirage CPU timing table including the
// LU and QR kernels for tile size nb.
func ExtendedCPUKernelTimes(nb int) map[graph.Kind]float64 {
	t := CPUKernelTimes(nb)
	t[graph.GETRF] = kernels.GetrfFlops(nb) / (cpuGetrfGFlops * 1e9)
	t[graph.GEQRT] = kernels.GeqrtFlops(nb) / (cpuGeqrtGFlops * 1e9)
	t[graph.ORMQR] = kernels.OrmqrFlops(nb) / (cpuOrmqrGFlops * 1e9)
	t[graph.TSQRT] = kernels.TsqrtFlops(nb) / (cpuTsqrtGFlops * 1e9)
	t[graph.TSMQR] = kernels.TsmqrFlops(nb) / (cpuTsmqrGFlops * 1e9)
	t[graph.TRSV] = kernels.TrsvFlops(nb) / (cpuTrsvGFlops * 1e9)
	t[graph.GEMV] = kernels.GemvFlops(nb) / (cpuGemvGFlops * 1e9)
	return t
}

// ExtendedGPUKernelTimes derives the GPU table from the CPU one via the
// extension speedups.
func ExtendedGPUKernelTimes(nb int) map[graph.Kind]float64 {
	cpu := ExtendedCPUKernelTimes(nb)
	t := GPUKernelTimes(nb)
	t[graph.GETRF] = cpu[graph.GETRF] / SpeedupGETRF
	t[graph.GEQRT] = cpu[graph.GEQRT] / SpeedupGEQRT
	t[graph.ORMQR] = cpu[graph.ORMQR] / SpeedupORMQR
	t[graph.TSQRT] = cpu[graph.TSQRT] / SpeedupTSQRT
	t[graph.TSMQR] = cpu[graph.TSMQR] / SpeedupTSMQR
	t[graph.TRSV] = cpu[graph.TRSV] / SpeedupTRSV
	t[graph.GEMV] = cpu[graph.GEMV] / SpeedupGEMV
	return t
}

// MirageExtended returns the Mirage model with timing entries for all nine
// kernel kinds, so LU and QR DAGs can be scheduled, bounded and simulated
// exactly like Cholesky ones.
func MirageExtended() *Platform {
	p := Mirage()
	p.Name = "mirage-extended"
	p.Classes[0].Times = ExtendedCPUKernelTimes(TileNB)
	p.Classes[1].Times = ExtendedGPUKernelTimes(TileNB)
	return p
}
