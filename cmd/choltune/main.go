// Command choltune sweeps the tile size for a given matrix dimension on a
// platform model and reports the best nb — the automated version of the
// calibration behind the paper's fixed nb = 960 ("From previous work we are
// getting maximum performance ... with tile size equal to 960").
//
// Usage:
//
//	choltune -n 15360
//	choltune -n 23040 -candidates 240,480,960,1920
//	choltune -n 15360 -platform-file mynode.json -ref-nb 960
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/autotune"
	"repro/internal/platform"
)

func main() {
	var (
		n        = flag.Int("n", 15360, "matrix dimension")
		cands    = flag.String("candidates", "", "comma-separated tile sizes (default: divisors-based set)")
		platFile = flag.String("platform-file", "", "JSON platform description (default: Mirage)")
		refNB    = flag.Int("ref-nb", platform.TileNB, "tile size the platform model was calibrated at")
		seed     = flag.Int64("seed", 42, "jitter seed")
	)
	flag.Parse()

	p := platform.Mirage()
	if *platFile != "" {
		loaded, err := platform.LoadFile(*platFile)
		if err != nil {
			fatal(err)
		}
		p = loaded
	}

	var candidates []int
	if *cands != "" {
		for _, s := range strings.Split(*cands, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad candidate %q", s))
			}
			candidates = append(candidates, v)
		}
	} else {
		candidates = autotune.Divisors(*n, *n/64, *n/2)
		candidates = append(candidates, *n)
	}

	points, err := autotune.Sweep(*n, candidates, p, *refNB, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tile-size sweep for N=%d on %s (dmdas, overhead model):\n\n", *n, p.Name)
	fmt.Printf("%8s %8s %12s %12s\n", "nb", "tiles", "GFLOP/s", "makespan(s)")
	best := autotune.Best(points)
	for _, pt := range points {
		marker := ""
		if pt.NB == best.NB {
			marker = "   <- best"
		}
		fmt.Printf("%8d %8d %12.1f %12.4f%s\n", pt.NB, pt.Tiles, pt.GFlops, pt.Makespan, marker)
	}
	fmt.Printf("\nbest tile size: nb=%d (%.1f GFLOP/s)\n", best.NB, best.GFlops)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "choltune:", err)
	os.Exit(1)
}
